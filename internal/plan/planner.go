package plan

import (
	"errors"
	"fmt"
	"sort"

	"lincount/internal/counting"
	"lincount/internal/symtab"
)

// StatsFunc supplies the planner's data statistics: the cardinality of a
// predicate by its original (unadorned) symbol — base facts in the
// database plus fact rules embedded in the program. A nil StatsFunc
// plans structurally (all cardinalities zero), which degenerates to the
// proven applicability order.
type StatsFunc func(pred symtab.Sym) int64

// Choice is one ranked candidate strategy.
type Choice struct {
	Strategy Strategy
	// Cost is the planner's work estimate in visited-fact units; lower
	// is better. Estimates are comparable only within one ranking.
	Cost float64
	// Reason explains the estimate ("linear program; counting visits
	// ~N left-part facts", …) for explain output and debugging.
	Reason string
}

// Rank orders the candidate strategies for the shared (program, query)
// pair, cheapest estimated cost first. The result is the Auto
// degradation chain: the head is the planner's pick and the tail the
// fallbacks, always ending in semi-naive, which is applicable to
// everything. Only strategies whose applicability gates pass are
// candidates, so every entry can at least be attempted; cost estimates
// order them.
//
// The cost model counts the base facts each method visits, derived from
// the analysis decomposition: the reduced counting program visits the
// left-part and exit relations (B+E); the counting runtime additionally
// walks the right parts during answer reconstruction (B+E+R); magic
// sets re-join the same relations per iteration level, modeled as
// 2·(B+E+R); and semi-naive visits every reachable relation per
// fixpoint round, modeled as 4·T where T is the total reachable base
// cardinality. Since B+E+R ≤ T by construction, the model is calibrated
// so that with no statistics (or an empty database) the ranking
// degenerates to the structurally proven order the old resolver used —
// statistics sharpen the margins and make the estimates visible, they
// cannot rank an inapplicable strategy first.
func Rank(sh *Shared, stats StatsFunc) []Choice {
	if stats == nil {
		stats = func(symtab.Sym) int64 { return 0 }
	}
	total := float64(reachableFacts(sh, stats))
	semi := func(reason string) Choice {
		return Choice{Strategy: SemiNaive, Cost: 4 * total,
			Reason: fmt.Sprintf("%s; full bottom-up fixpoint over ~%.0f reachable base facts", reason, total)}
	}

	if !sh.GoalDerived() {
		return []Choice{semi("goal is extensional (no rules define it)")}
	}
	a, err := sh.Adorned()
	if err != nil {
		return []Choice{semi("goal is not adornable: " + err.Error())}
	}
	if len(a.Program.Rules) == 0 {
		return []Choice{semi("goal is purely extensional after adornment")}
	}
	an, anErr := sh.Analysis()
	if anErr != nil && errors.Is(anErr, counting.ErrNoBoundArgs) {
		// No bound arguments: neither counting nor magic sets can
		// specialize anything.
		return []Choice{semi("query binds no arguments; sideways information passing has nothing to propagate")}
	}

	var choices []Choice
	if anErr == nil {
		b, e, r := partCosts(an, stats)
		class := an.Classify()
		switch class {
		case counting.RightLinearClass, counting.LeftLinearClass, counting.MixedLinearClass:
			if an.ListRewriteSafe() {
				choices = append(choices, Choice{Strategy: CountingReduced, Cost: b + e,
					Reason: fmt.Sprintf("%v and list-rewrite safe; reduction skips path reconstruction (~%.0f left-part+exit facts)", class, b+e)})
			}
		}
		choices = append(choices, Choice{Strategy: CountingRuntime, Cost: b + e + r,
			Reason: fmt.Sprintf("linear program; pointer-based counting is cycle-safe (~%.0f clique-relation facts)", b+e+r)})
		choices = append(choices, Choice{Strategy: Magic, Cost: 2 * (b + e + r),
			Reason: fmt.Sprintf("binding propagation restricts evaluation to the query-reachable subgraph, rejoined per level (~%.0f facts)", b+e+r)})
	} else {
		choices = append(choices, Choice{Strategy: Magic, Cost: 2 * total,
			Reason: fmt.Sprintf("outside the counting class (%v); magic sets restrict semi-naive evaluation to the bound subgraph (~%.0f reachable facts)", anErr, total)})
	}
	choices = append(choices, semi("always applicable"))

	sort.SliceStable(choices, func(i, j int) bool {
		if choices[i].Cost != choices[j].Cost {
			return choices[i].Cost < choices[j].Cost
		}
		return tiePriority(choices[i].Strategy) < tiePriority(choices[j].Strategy)
	})
	return choices
}

// tiePriority breaks cost ties in proven-structure order: the reduced
// rewriting beats the runtime (no pointer arenas), which beats magic
// (counting sets are smaller than magic sets for linear programs, §6 of
// the paper), which beats raw semi-naive.
func tiePriority(s Strategy) int {
	switch s {
	case CountingReduced:
		return 0
	case CountingRuntime:
		return 1
	case Magic:
		return 2
	default:
		return 3
	}
}

// reachableFacts sums the cardinalities of every predicate reachable
// from the goal in the original program — the planner's T.
func reachableFacts(sh *Shared, stats StatsFunc) int64 {
	prog, goal := sh.prog, sh.query.Goal.Pred
	seen := map[symtab.Sym]bool{goal: true}
	work := []symtab.Sym{goal}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range prog.Rules {
			if r.Head.Pred != p {
				continue
			}
			for _, l := range r.Body {
				if !seen[l.Pred] {
					seen[l.Pred] = true
					work = append(work, l.Pred)
				}
			}
		}
	}
	var total int64
	for p := range seen {
		total += stats(p)
	}
	return total
}

// partCosts sums the distinct non-clique predicate cardinalities of the
// analysis decomposition: b for the left parts, e for the exit rules,
// r for the right parts. A predicate appearing in several parts counts
// once per part it appears in but once within each (distinct-set sums),
// so b+e+r never exceeds a multiple of the reachable total.
func partCosts(an *counting.Analysis, stats StatsFunc) (b, e, r float64) {
	base := func(p symtab.Sym) symtab.Sym {
		if orig, ok := an.Adorned.Base[p]; ok {
			return orig
		}
		return p
	}
	sumSet := func(preds map[symtab.Sym]bool) float64 {
		var n int64
		for p := range preds {
			n += stats(p)
		}
		return float64(n)
	}
	left, right, exit := map[symtab.Sym]bool{}, map[symtab.Sym]bool{}, map[symtab.Sym]bool{}
	for i := range an.Rec {
		rr := &an.Rec[i]
		for _, idx := range rr.Left {
			left[base(rr.Rule.Body[idx].Pred)] = true
		}
		for _, idx := range rr.Right {
			right[base(rr.Rule.Body[idx].Pred)] = true
		}
	}
	for _, ex := range an.Exit {
		for _, l := range ex.Rule.Body {
			exit[base(l.Pred)] = true
		}
	}
	return sumSet(left), sumSet(exit), sumSet(right)
}
