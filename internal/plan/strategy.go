// Package plan is the query-compilation pipeline: it turns a (program,
// query) pair into a CompiledQuery — an intermediate representation
// carrying the adornment, the linearity analysis, the strategy's
// rewritten program and the execution entry point — via a pass manager,
// caches compiled plans in an LRU keyed by (query, strategy, options),
// and ranks candidate strategies with a cost model over per-relation
// cardinality statistics. The facade (package lincount) executes
// CompiledQuery values; this package never evaluates anything itself.
package plan

import "fmt"

// Strategy selects how a query is evaluated. The canonical definition
// lives here so the compilation pipeline, the plan cache and the planner
// can name strategies without importing the facade; package lincount
// re-exports the type and constants unchanged.
type Strategy int

const (
	// Auto analyzes the program and picks the best applicable method:
	// the reduced counting program for right-/left-/mixed-linear
	// programs, the counting runtime for other linear programs (safe on
	// cyclic data), and magic sets otherwise.
	Auto Strategy = iota
	// Naive evaluates the program bottom-up without rewriting, recomputing
	// every rule each iteration. Baseline of baselines.
	Naive
	// SemiNaive evaluates bottom-up with differential iteration.
	SemiNaive
	// Magic applies the magic-set rewriting, then evaluates semi-naively.
	Magic
	// CountingClassic applies the classical counting method (integer
	// distance index). Applicable only to a single linear recursive rule
	// with disjoint left and right parts; unsafe on cyclic data.
	CountingClassic
	// Counting applies the extended counting rewriting (Algorithm 1 of
	// the paper) with path arguments. Applicable to every linear program;
	// unsafe on cyclic data (use CountingRuntime there).
	Counting
	// CountingReduced applies Algorithm 1 followed by the reduction of
	// Algorithm 3.
	CountingReduced
	// CountingRuntime evaluates with the pointer-based counting runtime
	// (Algorithm 2), which is safe on cyclic databases.
	CountingRuntime
	// MagicSup applies the supplementary magic-set rewriting (Beeri &
	// Ramakrishnan), which materializes rule prefixes so they are not
	// re-joined per derived body literal.
	MagicSup
	// MagicCounting is the hybrid of Saccà & Zaniolo (SIGMOD 1987, the
	// paper's reference [16]): probe the left-part graph reachable from
	// the query constants; if acyclic, run the (fast) reduced extended
	// counting program, otherwise fall back to magic sets. The paper's
	// Algorithm 2 supersedes it by handling cycles inside the counting
	// framework; both are provided for comparison.
	MagicCounting
	// QSQ evaluates top-down with Query-SubQuery (Vieille), the
	// operational counterpart of magic sets from the [4] comparison
	// suite. Negated derived literals are not supported.
	QSQ
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Naive:
		return "naive"
	case SemiNaive:
		return "semi-naive"
	case Magic:
		return "magic"
	case CountingClassic:
		return "counting-classic"
	case Counting:
		return "counting"
	case CountingReduced:
		return "counting-reduced"
	case CountingRuntime:
		return "counting-runtime"
	case MagicSup:
		return "magic-sup"
	case MagicCounting:
		return "magic-counting"
	case QSQ:
		return "qsq"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy converts a name (as printed by String) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for s := Auto; s <= QSQ; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return Auto, fmt.Errorf("lincount: unknown strategy %q", name)
}

// Strategies lists all concrete strategies (excluding Auto), for sweeps.
func Strategies() []Strategy {
	return []Strategy{Naive, SemiNaive, Magic, MagicSup, MagicCounting, QSQ, CountingClassic, Counting, CountingReduced, CountingRuntime}
}
