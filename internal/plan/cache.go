package plan

import (
	"container/list"
	"sync"
)

// Key identifies a cached plan. Query is the normalized query text —
// rewrites embed the query's constants (the magic seed fact, the
// counting seed), so plans are keyed by the full goal, not just its
// adornment pattern. Opts is a fingerprint of the evaluation options
// that are baked into a plan's execution behavior, so evaluations with
// different budgets never share an entry spuriously.
type Key struct {
	Query    string
	Strategy Strategy
	Opts     uint64
}

// Cache is a mutex-guarded LRU of compiled plans plus the per-query
// Shared compilation states they were built from. One Cache belongs to
// one Program (plans carry symbols interned in the program's bank and
// are meaningless across programs); re-parsing a program naturally
// invalidates everything by starting an empty cache.
type Cache struct {
	mu  sync.Mutex
	cap int

	plans map[Key]*list.Element
	order *list.List // front = most recently used

	shared map[string]*Shared // per normalized query text

	// sizeHook, when set, observes entry-count deltas (wired to the
	// obsv plan-cache gauge by the facade).
	sizeHook func(delta int)
}

type cacheEntry struct {
	key Key
	cq  *CompiledQuery
}

// NewCache returns an empty plan cache holding up to capacity plans.
func NewCache(capacity int, sizeHook func(delta int)) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:      capacity,
		plans:    make(map[Key]*list.Element),
		order:    list.New(),
		shared:   make(map[string]*Shared),
		sizeHook: sizeHook,
	}
}

// Get returns the cached plan for key, marking it most recently used.
func (c *Cache) Get(key Key) (*CompiledQuery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.plans[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).cq, true
}

// Put stores a compiled plan, evicting the least recently used entry
// when full. Failed compiles are never stored (callers only Put
// successes), so a strategy error is re-derived — and re-reported — per
// evaluation.
func (c *Cache) Put(key Key, cq *CompiledQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.plans[key]; ok {
		el.Value.(*cacheEntry).cq = cq
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.plans, oldest.Value.(*cacheEntry).key)
			if c.sizeHook != nil {
				c.sizeHook(-1)
			}
		}
	}
	c.plans[key] = c.order.PushFront(&cacheEntry{key: key, cq: cq})
	if c.sizeHook != nil {
		c.sizeHook(1)
	}
}

// Len reports the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// SharedFor returns the Shared compilation state for a normalized query
// text, building it with mk on first use. All strategies (and all Auto
// fallback attempts) compiling the same query against this cache's
// program reuse one adornment and one analysis through it. The shared
// map is bounded by the same capacity as the plan LRU; when it
// overflows it is simply reset (a Shared is cheap to rebuild — the
// expensive artifacts are the plans, which have their own LRU).
func (c *Cache) SharedFor(query string, mk func() *Shared) *Shared {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh, ok := c.shared[query]; ok {
		return sh
	}
	if len(c.shared) >= c.cap {
		c.shared = make(map[string]*Shared)
	}
	sh := mk()
	c.shared[query] = sh
	return sh
}
