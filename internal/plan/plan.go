package plan

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/counting"
	"lincount/internal/magic"
	"lincount/internal/obsv"
)

// Shared holds the strategy-independent compilation state of one
// (program, query) pair: the adornment and the linearity analysis. Both
// are computed at most once (sync.Once) no matter how many candidate
// strategies compile against them — the Auto fallback chain and the
// planner all rank and rewrite off the same facts. A Shared is safe for
// concurrent use.
type Shared struct {
	prog  *ast.Program
	query ast.Query

	adornOnce sync.Once
	adorned   *adorn.Adorned
	adornErr  error

	anOnce sync.Once
	an     *counting.Analysis
	anErr  error

	derivedOnce sync.Once
	derived     bool

	// stats is the most recently published cardinality estimator for
	// this (program, query) pair — set by the facade each evaluation
	// (the database can change between evaluations) and read by the
	// engine to pre-size its relations and indexes. Atomic because a
	// Shared is cached and used concurrently.
	stats atomic.Pointer[StatsFunc]
}

// SetStats publishes the per-predicate cardinality estimator for
// subsequent compilations and evaluations against this Shared.
func (s *Shared) SetStats(fn StatsFunc) {
	if fn != nil {
		s.stats.Store(&fn)
	}
}

// Stats returns the last published cardinality estimator, or nil if none
// has been set.
func (s *Shared) Stats() StatsFunc {
	if p := s.stats.Load(); p != nil {
		return *p
	}
	return nil
}

// NewShared returns the shared compilation state for evaluating q
// against prog.
func NewShared(prog *ast.Program, q ast.Query) *Shared {
	return &Shared{prog: prog, query: q}
}

// Program returns the original (unrewritten) program.
func (s *Shared) Program() *ast.Program { return s.prog }

// Query returns the parsed query.
func (s *Shared) Query() ast.Query { return s.query }

// GoalDerived reports whether any rule defines the goal predicate.
func (s *Shared) GoalDerived() bool {
	s.derivedOnce.Do(func() {
		for _, r := range s.prog.Rules {
			if r.Head.Pred == s.query.Goal.Pred {
				s.derived = true
				return
			}
		}
	})
	return s.derived
}

// Adorned returns the adorned program, computing it on first call.
func (s *Shared) Adorned() (*adorn.Adorned, error) {
	s.adornOnce.Do(func() {
		s.adorned, s.adornErr = adorn.Adorn(s.prog, s.query)
	})
	return s.adorned, s.adornErr
}

// Analysis returns the counting analysis of the adorned program,
// computing it (and the adornment) on first call. Adornment errors
// surface here too.
func (s *Shared) Analysis() (*counting.Analysis, error) {
	s.anOnce.Do(func() {
		a, err := s.Adorned()
		if err != nil {
			s.anErr = err
			return
		}
		s.an, s.anErr = counting.Analyze(a)
	})
	return s.an, s.anErr
}

// PassInfo records one executed compilation pass.
type PassInfo struct {
	// Name is the pass name as it appears in traces ("adorn",
	// "rewrite:magic", "reduce", "finalize", …).
	Name string
	// Duration is the wall-clock time the pass took in this compile (a
	// pass whose result was already shared reports only the lookup).
	Duration time.Duration
}

// CompiledQuery is the compiled form of one (program, query, strategy)
// triple: everything evaluation needs that does not depend on the data.
// CompiledQuery values are immutable after Compile and may be cached and
// executed concurrently.
type CompiledQuery struct {
	// Strategy is the concrete strategy this plan was compiled for.
	Strategy Strategy
	// Query is the parsed original query.
	Query ast.Query
	// Adorned is the shared adornment (nil for Naive/SemiNaive, which do
	// not adorn).
	Adorned *adorn.Adorned
	// Analysis is the shared linearity analysis (counting strategies;
	// for MagicCounting it may be nil when the program is outside the
	// counting class, in which case execution uses magic sets directly).
	Analysis *counting.Analysis
	// Extensional is true when the adorned program has no rules — a
	// purely extensional goal that every rewriting strategy delegates to
	// semi-naive evaluation over the original program.
	Extensional bool
	// Program is the program the engine evaluates (the rewritten program
	// for rewriting strategies, the original otherwise; nil for
	// CountingRuntime and QSQ, which do not run the bottom-up engine).
	Program *ast.Program
	// EntryQuery is the goal to read answers from after evaluating
	// Program (the rewritten goal for rewriting strategies).
	EntryQuery ast.Query
	// Magic carries the magic-set rewrite artifacts (Magic/MagicSup).
	Magic *magic.Rewritten
	// Counting carries the counting rewrite artifacts
	// (CountingClassic/Counting/CountingReduced).
	Counting *counting.Rewritten
	// RewrittenText and RewrittenQueryText are the rewritten program and
	// goal rendered as Datalog source, formatted once at compile time.
	RewrittenText      string
	RewrittenQueryText string
	// Passes lists the executed passes in order with their durations.
	Passes []PassInfo
	// CompileTime is the total wall-clock time of the compile.
	CompileTime time.Duration
}

// A pass is one step of the compilation pipeline; it reads the shared
// state and fills in the CompiledQuery. Returning done=true ends the
// pipeline early (the extensional-goal short circuit).
type pass struct {
	name string
	run  func(cq *CompiledQuery, sh *Shared) (done bool, err error)
}

// passAdorn resolves the shared adornment and detects purely extensional
// goals.
var passAdorn = pass{name: "adorn", run: func(cq *CompiledQuery, sh *Shared) (bool, error) {
	a, err := sh.Adorned()
	if err != nil {
		return false, err
	}
	cq.Adorned = a
	if len(a.Program.Rules) == 0 {
		// Purely extensional goal: evaluate the original program
		// semi-naively, whatever the strategy asked for.
		cq.Extensional = true
		cq.Program = sh.prog
		cq.EntryQuery = cq.Query
		return true, nil
	}
	return false, nil
}}

// passAnalyze resolves the shared linearity analysis.
var passAnalyze = pass{name: "analyze", run: func(cq *CompiledQuery, sh *Shared) (bool, error) {
	an, err := sh.Analysis()
	if err != nil {
		return false, err
	}
	cq.Analysis = an
	return false, nil
}}

// passAnalyzeOptional is passAnalyze for MagicCounting, where an
// analysis failure means "outside the counting class, use magic sets"
// rather than a compile error.
var passAnalyzeOptional = pass{name: "analyze", run: func(cq *CompiledQuery, sh *Shared) (bool, error) {
	if an, err := sh.Analysis(); err == nil {
		cq.Analysis = an
	}
	return false, nil
}}

func rewritePass(name string, fn func(cq *CompiledQuery, sh *Shared) error) pass {
	return pass{name: name, run: func(cq *CompiledQuery, sh *Shared) (bool, error) {
		return false, fn(cq, sh)
	}}
}

var (
	passMagic = rewritePass("rewrite:magic", func(cq *CompiledQuery, sh *Shared) error {
		rw, err := magic.Rewrite(cq.Adorned)
		if err != nil {
			return err
		}
		cq.Magic = rw
		return nil
	})
	passMagicSup = rewritePass("rewrite:magic-sup", func(cq *CompiledQuery, sh *Shared) error {
		rw, err := magic.RewriteSupplementary(cq.Adorned)
		if err != nil {
			return err
		}
		cq.Magic = rw
		return nil
	})
	passCountingClassic = rewritePass("rewrite:counting-classic", func(cq *CompiledQuery, sh *Shared) error {
		rw, err := counting.RewriteClassicFromAnalysis(cq.Analysis)
		if err != nil {
			return err
		}
		cq.Counting = rw
		return nil
	})
	passCounting = rewritePass("rewrite:counting", func(cq *CompiledQuery, sh *Shared) error {
		rw, err := counting.RewriteFromAnalysis(cq.Analysis)
		if err != nil {
			return err
		}
		cq.Counting = rw
		return nil
	})
	// passCountingForReduce is passCounting under the name the reduced
	// strategy traces ("rewrite:counting-reduced"); the reduction itself
	// is the separate "reduce" pass that follows.
	passCountingForReduce = rewritePass("rewrite:counting-reduced", passCounting.runErr())
	passReduce            = rewritePass("reduce", func(cq *CompiledQuery, sh *Shared) error {
		cq.Counting = counting.Reduce(cq.Counting)
		return nil
	})
)

// runErr adapts a pass back to its error-only body so another pass can
// reuse it under a different trace name.
func (p pass) runErr() func(cq *CompiledQuery, sh *Shared) error {
	return func(cq *CompiledQuery, sh *Shared) error {
		_, err := p.run(cq, sh)
		return err
	}
}

// passFinalize fixes the execution entry point and renders the rewritten
// text once, so cached plans never re-format.
var passFinalize = pass{name: "finalize", run: func(cq *CompiledQuery, sh *Shared) (bool, error) {
	bank := sh.prog.Bank
	switch {
	case cq.Magic != nil:
		cq.Program = cq.Magic.Program
		cq.EntryQuery = cq.Magic.Query
		cq.RewrittenText = cq.Magic.Program.Format()
		cq.RewrittenQueryText = ast.FormatQuery(bank, cq.Magic.Query)
	case cq.Counting != nil:
		cq.Program = cq.Counting.Program
		cq.EntryQuery = cq.Counting.Query
		cq.RewrittenText = cq.Counting.Program.Format()
		cq.RewrittenQueryText = ast.FormatQuery(bank, cq.Counting.Query)
	case cq.Strategy == CountingRuntime:
		cq.RewrittenText = counting.RewriteCyclicText(cq.Analysis)
		cq.RewrittenQueryText = strings.TrimSpace(ast.FormatQuery(bank, cq.Adorned.Query))
	default:
		// Naive, SemiNaive, QSQ, MagicCounting: evaluate/dispatch over
		// the original program and read answers at the original goal.
		cq.Program = sh.prog
		cq.EntryQuery = cq.Query
	}
	return false, nil
}}

// passesFor returns the pipeline for a strategy. Every pipeline ends in
// passFinalize; rewriting pipelines start with the shared adornment.
func passesFor(s Strategy) []pass {
	switch s {
	case Naive, SemiNaive:
		return []pass{passFinalize}
	case Magic:
		return []pass{passAdorn, passMagic, passFinalize}
	case MagicSup:
		return []pass{passAdorn, passMagicSup, passFinalize}
	case CountingClassic:
		return []pass{passAdorn, passAnalyze, passCountingClassic, passFinalize}
	case Counting:
		return []pass{passAdorn, passAnalyze, passCounting, passFinalize}
	case CountingReduced:
		return []pass{passAdorn, passAnalyze, passCountingForReduce, passReduce, passFinalize}
	case CountingRuntime:
		return []pass{passAdorn, passAnalyze, passFinalize}
	case QSQ:
		return []pass{passAdorn, passFinalize}
	case MagicCounting:
		return []pass{passAdorn, passAnalyzeOptional, passFinalize}
	default:
		return nil
	}
}

// Compile runs the pass pipeline for the strategy over the shared state
// and returns the immutable CompiledQuery. Each pass is traced as a span
// in the "compile" category under its pass name. Compile never caches —
// the cache sits in front of it (see Cache).
func Compile(sh *Shared, s Strategy, tr *obsv.Tracer) (*CompiledQuery, error) {
	passes := passesFor(s)
	if passes == nil {
		return nil, &UnknownStrategyError{Strategy: s}
	}
	start := time.Now()
	cq := &CompiledQuery{Strategy: s, Query: sh.query}
	for _, p := range passes {
		sp := tr.Begin("compile", p.name)
		pstart := time.Now()
		done, err := p.run(cq, sh)
		sp.End()
		cq.Passes = append(cq.Passes, PassInfo{Name: p.name, Duration: time.Since(pstart)})
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	cq.CompileTime = time.Since(start)
	return cq, nil
}

// UnknownStrategyError is returned by Compile for a strategy with no
// pipeline (Auto itself, or an out-of-range value).
type UnknownStrategyError struct{ Strategy Strategy }

func (e *UnknownStrategyError) Error() string {
	return "lincount: unknown strategy " + e.Strategy.String()
}
