package plan

import (
	"testing"

	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

const sgSrc = `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`

func shared(t *testing.T, src, query string) *Shared {
	t.Helper()
	bank := term.NewBank(symtab.New())
	res, err := parser.Parse(bank, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(bank, query)
	if err != nil {
		t.Fatal(err)
	}
	return NewShared(res.Program, q)
}

func TestSharedComputesOnce(t *testing.T) {
	sh := shared(t, sgSrc, "?- sg(a,Y).")
	a1, err1 := sh.Adorned()
	a2, err2 := sh.Analysis()
	if err1 != nil || err2 != nil {
		t.Fatalf("adorn/analyze: %v, %v", err1, err2)
	}
	b1, _ := sh.Adorned()
	b2, _ := sh.Analysis()
	if a1 != b1 || a2 != b2 {
		t.Errorf("Shared recomputed adornment or analysis on second call")
	}
}

func TestCompilePassSequences(t *testing.T) {
	passNames := func(cq *CompiledQuery) []string {
		out := make([]string, len(cq.Passes))
		for i, p := range cq.Passes {
			out[i] = p.Name
		}
		return out
	}
	cases := []struct {
		strategy Strategy
		want     []string
	}{
		{SemiNaive, []string{"finalize"}},
		{Magic, []string{"adorn", "rewrite:magic", "finalize"}},
		{CountingReduced, []string{"adorn", "analyze", "rewrite:counting-reduced", "reduce", "finalize"}},
		{CountingRuntime, []string{"adorn", "analyze", "finalize"}},
	}
	for _, tc := range cases {
		sh := shared(t, sgSrc, "?- sg(a,Y).")
		cq, err := Compile(sh, tc.strategy, nil)
		if err != nil {
			t.Fatalf("%v: %v", tc.strategy, err)
		}
		got := passNames(cq)
		if len(got) != len(tc.want) {
			t.Fatalf("%v: passes %v, want %v", tc.strategy, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v: pass %d = %q, want %q", tc.strategy, i, got[i], tc.want[i])
			}
		}
		if tc.strategy == CountingRuntime {
			// The runtime strategy does not run the bottom-up engine: it
			// executes off the analysis directly and carries no program.
			if cq.Program != nil || cq.Analysis == nil {
				t.Errorf("counting-runtime: Program=%v Analysis=%v, want nil program and non-nil analysis", cq.Program, cq.Analysis)
			}
		} else if cq.Program == nil {
			t.Errorf("%v: compiled query has no execution entry", tc.strategy)
		}
	}
}

func TestCompileExtensionalGoal(t *testing.T) {
	// The goal predicate must have no rules at all — a fact rule like
	// `arc(a,b).` already makes arc derived. Here arc appears only in a
	// rule body, so adornment reaches no rules and the goal is extensional.
	sh := shared(t, "p(X,Y) :- arc(X,Y).\n", "?- arc(a,Y).")
	for _, s := range []Strategy{Magic, CountingReduced, QSQ} {
		cq, err := Compile(sh, s, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !cq.Extensional {
			t.Errorf("%v: goal with no rules not marked extensional", s)
		}
	}
}

func TestCacheLRUAndHook(t *testing.T) {
	var size int
	c := NewCache(2, func(d int) { size += d })
	k := func(q string) Key { return Key{Query: q, Strategy: SemiNaive} }
	cq := &CompiledQuery{}
	c.Put(k("a"), cq)
	c.Put(k("b"), cq)
	if _, ok := c.Get(k("a")); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put(k("c"), cq) // evicts b
	if _, ok := c.Get(k("b")); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if _, ok := c.Get(k("a")); !ok {
		t.Error("recently used a was evicted")
	}
	if c.Len() != 2 || size != 2 {
		t.Errorf("Len=%d sizeHook total=%d, want 2, 2", c.Len(), size)
	}
}

func TestCacheSharedForReuses(t *testing.T) {
	c := NewCache(4, nil)
	calls := 0
	mk := func() *Shared { calls++; return &Shared{} }
	s1 := c.SharedFor("?- q(a).", mk)
	s2 := c.SharedFor("?- q(a).", mk)
	if s1 != s2 || calls != 1 {
		t.Errorf("SharedFor rebuilt shared state: %d calls", calls)
	}
	if s3 := c.SharedFor("?- q(b).", mk); s3 == s1 {
		t.Error("different query texts share compilation state")
	}
}

func TestRankGates(t *testing.T) {
	stats := func(symtab.Sym) int64 { return 0 }

	// Mixed-linear sg: runtime first (list rewrite unsafe here), chain
	// ends in semi-naive.
	choices := Rank(shared(t, sgSrc, "?- sg(a,Y)."), stats)
	if choices[0].Strategy != CountingRuntime {
		t.Errorf("sg: first choice %v, want counting-runtime", choices[0].Strategy)
	}
	if last := choices[len(choices)-1].Strategy; last != SemiNaive {
		t.Errorf("sg: chain ends in %v, want semi-naive", last)
	}

	// Right-linear closure: the reduced program ranks first.
	rl := "tc(X,Y) :- arc(X,Y).\ntc(X,Y) :- arc(X,Z), tc(Z,Y).\n"
	if choices := Rank(shared(t, rl, "?- tc(a,Y)."), stats); choices[0].Strategy != CountingReduced {
		t.Errorf("right-linear: first choice %v, want counting-reduced", choices[0].Strategy)
	}

	// Nonlinear: magic first.
	nl := "tc(X,Y) :- arc(X,Y).\ntc(X,Y) :- tc(X,Z), tc(Z,Y).\n"
	if choices := Rank(shared(t, nl, "?- tc(a,Y)."), stats); choices[0].Strategy != Magic {
		t.Errorf("nonlinear: first choice %v, want magic", choices[0].Strategy)
	}

	// No bound arguments: semi-naive only.
	if choices := Rank(shared(t, rl, "?- tc(X,Y)."), stats); len(choices) != 1 || choices[0].Strategy != SemiNaive {
		t.Errorf("unbound query: %v, want [semi-naive]", choices)
	}

	// Extensional goal (no rules define the goal predicate; a fact rule
	// would already count as a rule): semi-naive only.
	if choices := Rank(shared(t, "p(X,Y) :- arc(X,Y).\n", "?- arc(a,Y)."), stats); len(choices) != 1 || choices[0].Strategy != SemiNaive {
		t.Errorf("extensional goal: %v, want [semi-naive]", choices)
	}
}

func TestRankCostsOrdered(t *testing.T) {
	// With data, costs must be nondecreasing along the chain and the
	// structural order must hold (B+E <= B+E+R <= 2(B+E+R) <= 4T).
	stats := func(symtab.Sym) int64 { return 10 }
	choices := Rank(shared(t, sgSrc, "?- sg(a,Y)."), stats)
	for i := 1; i < len(choices); i++ {
		if choices[i].Cost < choices[i-1].Cost {
			t.Errorf("cost order violated: %v(%v) before %v(%v)",
				choices[i-1].Strategy, choices[i-1].Cost, choices[i].Strategy, choices[i].Cost)
		}
	}
	if choices[0].Cost <= 0 {
		t.Errorf("nonzero stats produced zero cost estimate: %+v", choices[0])
	}
}
