package term

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lincount/internal/symtab"
)

func newBank() *Bank { return NewBank(symtab.New()) }

func TestIntRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40)} {
		v := Int(n)
		if !v.IsInt() || v.AsInt() != n {
			t.Errorf("Int(%d) round-trip failed: %v", n, v)
		}
	}
}

func TestIntOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int on 63-bit value did not panic")
		}
	}()
	Int(1 << 62)
}

func TestSymbolRoundTrip(t *testing.T) {
	b := newBank()
	s := b.Symbols().Intern("abc")
	v := Symbol(s)
	if !v.IsSymbol() || v.AsSymbol() != s {
		t.Errorf("Symbol round-trip failed: %v", v)
	}
	if v.IsInt() || v.IsCompound() {
		t.Error("symbol value reports wrong tags")
	}
}

func TestCompoundHashConsing(t *testing.T) {
	b := newBank()
	f := b.Symbols().Intern("f")
	a, c := Int(1), Int(2)
	v1 := b.Compound(f, a, c)
	v2 := b.Compound(f, a, c)
	if v1 != v2 {
		t.Error("identical compounds interned to different handles")
	}
	v3 := b.Compound(f, c, a)
	if v1 == v3 {
		t.Error("distinct compounds interned to the same handle")
	}
	got := b.Deref(v1)
	if got.Functor != f || len(got.Args) != 2 || got.Args[0] != a || got.Args[1] != c {
		t.Errorf("Deref returned %+v", got)
	}
}

func TestZeroArityCompoundDistinctFromSymbol(t *testing.T) {
	b := newBank()
	f := b.Symbols().Intern("f")
	if b.Compound(f) == Symbol(f) {
		t.Error("f() aliases the bare symbol f")
	}
}

func TestDerefIndexAndCompIndex(t *testing.T) {
	b := newBank()
	f := b.Symbols().Intern("f")
	inner := b.Compound(f, Int(1))
	outer := b.Compound(f, inner, Int(2))
	// Arguments intern before their parents: CompIndex is monotone.
	if inner.CompIndex() >= outer.CompIndex() {
		t.Errorf("inner index %d not below outer %d", inner.CompIndex(), outer.CompIndex())
	}
	got := b.DerefIndex(outer.CompIndex())
	if got.Functor != f || len(got.Args) != 2 || got.Args[0] != inner {
		t.Errorf("DerefIndex = %+v", got)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("CompIndex on non-compound did not panic")
		}
	}()
	Int(3).CompIndex()
}

func TestListHelpers(t *testing.T) {
	b := newBank()
	elems := []Value{Int(1), Int(2), Int(3)}
	l := b.List(elems...)
	got, ok := b.ListElems(l)
	if !ok || len(got) != 3 {
		t.Fatalf("ListElems = %v, %v", got, ok)
	}
	for i := range elems {
		if got[i] != elems[i] {
			t.Errorf("elem %d = %v want %v", i, got[i], elems[i])
		}
	}
	if b.ListLen(l) != 3 {
		t.Errorf("ListLen = %d", b.ListLen(l))
	}
	if !b.IsNil(b.Nil()) || b.ListLen(b.Nil()) != 0 {
		t.Error("Nil not recognized")
	}
	if b.List() != b.Nil() {
		t.Error("List() != Nil()")
	}
	// Improper list.
	improper := b.Cons(Int(1), Int(2))
	if _, ok := b.ListElems(improper); ok {
		t.Error("ListElems accepted an improper list")
	}
	if b.ListLen(improper) != -1 {
		t.Error("ListLen accepted an improper list")
	}
}

func TestListSharingIsStructural(t *testing.T) {
	b := newBank()
	tail := b.List(Int(2), Int(3))
	l1 := b.Cons(Int(1), tail)
	l2 := b.List(Int(1), Int(2), Int(3))
	if l1 != l2 {
		t.Error("cons onto shared tail differs from freshly built list")
	}
}

func TestFormat(t *testing.T) {
	b := newBank()
	a := Symbol(b.Symbols().Intern("a"))
	f := b.Symbols().Intern("f")
	cases := []struct {
		v    Value
		want string
	}{
		{Int(7), "7"},
		{Int(-7), "-7"},
		{a, "a"},
		{b.Compound(f, Int(1), a), "f(1,a)"},
		{b.Nil(), "[]"},
		{b.List(Int(1), Int(2)), "[1,2]"},
		{b.Cons(Int(1), Int(2)), "[1|2]"},
		{b.List(b.Compound(f, a)), "[f(a)]"},
	}
	for _, c := range cases {
		if got := b.Format(c.v); got != c.want {
			t.Errorf("Format = %q want %q", got, c.want)
		}
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	b := newBank()
	vals := []Value{
		Int(-5), Int(0), Int(9),
		Symbol(b.Symbols().Intern("a")), Symbol(b.Symbols().Intern("b")),
		b.List(Int(1)), b.List(Int(2)),
	}
	for _, x := range vals {
		if Compare(x, x) != 0 {
			t.Errorf("Compare(%v,%v) != 0", x, x)
		}
		for _, y := range vals {
			if Compare(x, y) != -Compare(y, x) {
				t.Errorf("Compare not antisymmetric on %v,%v", x, y)
			}
			if (x == y) != (Compare(x, y) == 0) {
				t.Errorf("Compare zero iff equal violated on %v,%v", x, y)
			}
		}
	}
}

// randomGround builds a random ground term, exercising hash-consing.
func randomGround(b *Bank, r *rand.Rand, depth int) Value {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return Int(int64(r.Intn(10)))
		}
		return Symbol(b.Symbols().Intern(string(rune('a' + r.Intn(5)))))
	}
	f := b.Symbols().Intern(string(rune('f' + r.Intn(3))))
	n := r.Intn(3)
	args := make([]Value, n)
	for i := range args {
		args[i] = randomGround(b, r, depth-1)
	}
	return b.Compound(f, args...)
}

// rebuild re-interns v (possibly into another bank) and must produce a handle
// equal to interning the same structure again.
func rebuild(src, dst *Bank, v Value) Value {
	switch {
	case v.IsInt():
		return v
	case v.IsSymbol():
		return Symbol(dst.Symbols().Intern(src.Symbols().String(v.AsSymbol())))
	default:
		c := src.Deref(v)
		args := make([]Value, len(c.Args))
		for i, a := range c.Args {
			args[i] = rebuild(src, dst, a)
		}
		return dst.Compound(dst.Symbols().Intern(src.Symbols().String(c.Functor)), args...)
	}
}

func TestHashConsEqualityIsStructuralEquality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	b := newBank()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomGround(b, r, 4)
		return rebuild(b, b, v) == v
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRebuildAcrossBanksPreservesFormat(t *testing.T) {
	b1, b2 := newBank(), newBank()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		v := randomGround(b1, r, 4)
		w := rebuild(b1, b2, v)
		if b1.Format(v) != b2.Format(w) {
			t.Fatalf("format mismatch: %q vs %q", b1.Format(v), b2.Format(w))
		}
	}
}
