// Package term defines the ground-value representation used throughout the
// engine and the hash-consing Bank for compound terms.
//
// A Value is a single 64-bit handle: small integers and interned symbols are
// encoded inline; compound terms (including list cells) live in a Bank and
// are hash-consed, so two structurally equal ground terms always have the
// same handle. This gives O(1) equality, O(1) hashing and full structural
// sharing — it is exactly the "pointer" implementation of path lists that
// §3.4 of the paper calls for: consing a path entry onto a list allocates at
// most one new cell and returns a small handle.
package term

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"lincount/internal/symtab"
)

// Value is a handle to a ground term. The two low bits are a tag; the
// payload occupies the remaining 62 bits.
//
//	tag 0: small signed integer
//	tag 1: interned symbol (symtab.Sym)
//	tag 2: compound handle (index into a Bank)
type Value int64

const (
	tagInt  = 0
	tagSym  = 1
	tagComp = 2

	tagBits = 2
	tagMask = (1 << tagBits) - 1
)

// Int returns the Value encoding the small integer n.
// n must fit in 62 bits, which covers every counter the engine produces.
func Int(n int64) Value {
	v := Value(n<<tagBits | tagInt)
	if v>>tagBits != Value(n) {
		panic(fmt.Sprintf("term: integer %d overflows Value encoding", n))
	}
	return v
}

// Symbol returns the Value encoding the interned symbol s.
func Symbol(s symtab.Sym) Value { return Value(int64(s)<<tagBits | tagSym) }

// IsInt reports whether v encodes a small integer.
func (v Value) IsInt() bool { return v&tagMask == tagInt }

// IsSymbol reports whether v encodes an interned symbol.
func (v Value) IsSymbol() bool { return v&tagMask == tagSym }

// IsCompound reports whether v encodes a compound term handle.
func (v Value) IsCompound() bool { return v&tagMask == tagComp }

// AsInt returns the integer payload. It panics if v is not an integer.
func (v Value) AsInt() int64 {
	if !v.IsInt() {
		panic("term: Value is not an integer")
	}
	return int64(v) >> tagBits
}

// AsSymbol returns the symbol payload. It panics if v is not a symbol.
func (v Value) AsSymbol() symtab.Sym {
	if !v.IsSymbol() {
		panic("term: Value is not a symbol")
	}
	return symtab.Sym(int64(v) >> tagBits)
}

func (v Value) compIndex() int32 {
	if !v.IsCompound() {
		panic("term: Value is not a compound")
	}
	return int32(int64(v) >> tagBits)
}

func compValue(idx int32) Value { return Value(int64(idx)<<tagBits | tagComp) }

// Compound is the stored shape of a hash-consed compound term.
type Compound struct {
	Functor symtab.Sym
	Args    []Value
}

// Bank hash-conses compound terms. The zero value is not usable; call
// NewBank.
//
// A Bank is safe for concurrent use: Compound interns under a mutex, and
// Deref is lock-free. Compounds live in fixed-size chunks that are never
// reallocated once published (the chunk table is swapped atomically), so
// a reader holding a Value handle can dereference it while another
// goroutine interns — the property concurrent evaluations of prepared
// queries over one shared Program rely on. A handle is dereferenceable
// by any goroutine that obtained it through a happens-before edge with
// its interning (its own Compound call, or state built before the
// goroutines forked).
type Bank struct {
	syms *symtab.Table

	mu     sync.Mutex
	index  map[string]int32
	n      int32                    // number of interned compounds, guarded by mu
	chunks atomic.Pointer[[]*chunk] // published table of immutable-once-visible chunks

	nilSym  symtab.Sym
	consSym symtab.Sym
}

// Compounds are stored in fixed-size chunks so published slots are never
// moved by an append; 4096 entries keeps the table small and the
// two-level index cheap (a shift and a mask).
const (
	chunkBits = 12
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

type chunk [chunkSize]Compound

// ListNilName and ListConsName are the reserved functor names used for list
// cells. The parser maps `[...]` syntax onto them.
const (
	ListNilName  = "[]"
	ListConsName = "'.'"
)

// NewBank returns an empty bank tied to the given symbol table.
func NewBank(syms *symtab.Table) *Bank {
	b := &Bank{
		syms:    syms,
		index:   make(map[string]int32, 256),
		nilSym:  syms.Intern(ListNilName),
		consSym: syms.Intern(ListConsName),
	}
	b.chunks.Store(&[]*chunk{})
	return b
}

// Symbols returns the symbol table this bank interns functors into.
func (b *Bank) Symbols() *symtab.Table { return b.syms }

func compKey(functor symtab.Sym, args []Value) string {
	var sb []byte
	sb = binary.AppendVarint(sb, int64(functor))
	for _, a := range args {
		sb = binary.AppendVarint(sb, int64(a))
	}
	return string(sb)
}

// Compound interns the compound term functor(args...) and returns its
// handle. Structurally equal compounds always return the same Value.
// A zero-argument compound is legal and distinct from the bare symbol.
func (b *Bank) Compound(functor symtab.Sym, args ...Value) Value {
	key := compKey(functor, args)
	b.mu.Lock()
	if idx, ok := b.index[key]; ok {
		b.mu.Unlock()
		return compValue(idx)
	}
	idx := b.n
	tab := *b.chunks.Load()
	if int(idx>>chunkBits) == len(tab) {
		grown := make([]*chunk, len(tab)+1)
		copy(grown, tab)
		grown[len(tab)] = new(chunk)
		b.chunks.Store(&grown)
		tab = grown
	}
	tab[idx>>chunkBits][idx&chunkMask] = Compound{Functor: functor, Args: append([]Value(nil), args...)}
	b.index[key] = idx
	b.n = idx + 1
	b.mu.Unlock()
	return compValue(idx)
}

// Deref returns the stored compound for a compound Value.
// The returned Compound's Args slice must not be mutated.
func (b *Bank) Deref(v Value) Compound {
	idx := v.compIndex()
	return (*b.chunks.Load())[idx>>chunkBits][idx&chunkMask]
}

// DerefIndex returns the i-th interned compound (interning order). Used by
// serializers that externalize the whole bank.
func (b *Bank) DerefIndex(i int) Compound {
	return (*b.chunks.Load())[i>>chunkBits][i&chunkMask]
}

// CompIndex returns the bank index of a compound Value; it panics if v is
// not a compound. Argument compounds always have smaller indexes than the
// compounds containing them, which serializers rely on.
func (v Value) CompIndex() int { return int(v.compIndex()) }

// Len reports the number of distinct compounds interned.
func (b *Bank) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.n)
}

// Nil returns the empty-list value.
func (b *Bank) Nil() Value { return Symbol(b.nilSym) }

// Cons returns the interned list cell [head|tail].
func (b *Bank) Cons(head, tail Value) Value {
	return b.Compound(b.consSym, head, tail)
}

// IsNil reports whether v is the empty list.
func (b *Bank) IsNil(v Value) bool {
	return v.IsSymbol() && v.AsSymbol() == b.nilSym
}

// IsCons reports whether v is a list cell.
func (b *Bank) IsCons(v Value) bool {
	return v.IsCompound() && b.Deref(v).Functor == b.consSym
}

// List interns the proper list of the given elements.
func (b *Bank) List(elems ...Value) Value {
	v := b.Nil()
	for i := len(elems) - 1; i >= 0; i-- {
		v = b.Cons(elems[i], v)
	}
	return v
}

// ListElems returns the elements of a proper list, or ok=false if v is not a
// proper list (including improper tails).
func (b *Bank) ListElems(v Value) (elems []Value, ok bool) {
	for b.IsCons(v) {
		c := b.Deref(v)
		elems = append(elems, c.Args[0])
		v = c.Args[1]
	}
	if !b.IsNil(v) {
		return nil, false
	}
	return elems, true
}

// ListLen returns the length of a proper list, or -1 if v is not one.
func (b *Bank) ListLen(v Value) int {
	n := 0
	for b.IsCons(v) {
		n++
		v = b.Deref(v).Args[1]
	}
	if !b.IsNil(v) {
		return -1
	}
	return n
}

// Format renders v as Datalog source text.
func (b *Bank) Format(v Value) string {
	var sb strings.Builder
	b.format(&sb, v)
	return sb.String()
}

func (b *Bank) format(sb *strings.Builder, v Value) {
	switch {
	case v.IsInt():
		fmt.Fprintf(sb, "%d", v.AsInt())
	case v.IsSymbol():
		sb.WriteString(b.syms.String(v.AsSymbol()))
	default:
		c := b.Deref(v)
		if c.Functor == b.consSym {
			b.formatList(sb, v)
			return
		}
		sb.WriteString(b.syms.String(c.Functor))
		sb.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			b.format(sb, a)
		}
		sb.WriteByte(')')
	}
}

func (b *Bank) formatList(sb *strings.Builder, v Value) {
	sb.WriteByte('[')
	first := true
	for b.IsCons(v) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		c := b.Deref(v)
		b.format(sb, c.Args[0])
		v = c.Args[1]
	}
	if !b.IsNil(v) {
		sb.WriteByte('|')
		b.format(sb, v)
	}
	sb.WriteByte(']')
}

// Equal reports structural equality of two ground terms. Because the bank
// hash-conses, this is handle equality.
func Equal(a, b Value) bool { return a == b }

// Compare imposes a deterministic total order on Values for stable output:
// integers first (by value), then symbols (by Sym index), then compounds
// (by handle index, which reflects interning order).
func Compare(a, b Value) int {
	ta, tb := a&tagMask, b&tagMask
	if ta != tb {
		return int(ta) - int(tb)
	}
	pa, pb := int64(a)>>tagBits, int64(b)>>tagBits
	switch {
	case pa < pb:
		return -1
	case pa > pb:
		return 1
	default:
		return 0
	}
}
