// Package adorn implements query adornment: propagating the bound/free
// status of query arguments through a program with the standard
// left-to-right sideways information passing strategy, renaming every
// derived predicate p reached with binding pattern α to p_α.
//
// Adornment is the shared front end of the magic-set and counting rewrites
// (§2 of the paper).
package adorn

import (
	"fmt"
	"strings"

	"lincount/internal/ast"
	"lincount/internal/symtab"
)

// Adorned is the result of adorning a program with respect to a query.
type Adorned struct {
	// Program contains the adorned rules; every derived predicate is
	// renamed to name_α.
	Program *ast.Program
	// Query is the goal with its predicate renamed.
	Query ast.Query
	// Base maps each adorned predicate symbol back to the original.
	Base map[symtab.Sym]symtab.Sym
	// Patterns maps each adorned predicate symbol to its adornment
	// string over {b, f}.
	Patterns map[symtab.Sym]string
	// GoalAdornment is the adornment of the query predicate.
	GoalAdornment string
}

// Name returns the conventional adorned name, e.g. "sg_bf".
func Name(base, pattern string) string {
	if pattern == "" {
		return base
	}
	return base + "_" + pattern
}

// PatternOf computes the adornment of a literal's arguments given the set
// of bound variables: an argument is bound if it is ground or all its
// variables are bound.
func PatternOf(l ast.Literal, bound map[symtab.Sym]bool) string {
	var sb strings.Builder
	for _, a := range l.Args {
		if argBound(a, bound) {
			sb.WriteByte('b')
		} else {
			sb.WriteByte('f')
		}
	}
	return sb.String()
}

func argBound(t ast.Term, bound map[symtab.Sym]bool) bool {
	switch t.Kind {
	case ast.Const:
		return true
	case ast.Var:
		return bound[t.Name]
	default:
		for _, a := range t.Args {
			if !argBound(a, bound) {
				return false
			}
		}
		return true
	}
}

// BoundArgs splits a literal's arguments by an adornment pattern.
func BoundArgs(l ast.Literal, pattern string) (boundArgs, freeArgs []ast.Term) {
	for i, a := range l.Args {
		if pattern[i] == 'b' {
			boundArgs = append(boundArgs, a)
		} else {
			freeArgs = append(freeArgs, a)
		}
	}
	return boundArgs, freeArgs
}

// Adorn computes the adorned program for query q over p. Only rules
// reachable from the query's adorned predicate are emitted. If the query
// predicate has no rules (purely extensional), the result contains an empty
// program and the original goal.
func Adorn(p *ast.Program, q ast.Query) (*Adorned, error) {
	syms := p.Bank.Symbols()
	derived := map[symtab.Sym]bool{}
	for _, r := range p.Rules {
		derived[r.Head.Pred] = true
	}

	out := &Adorned{
		Program:  ast.NewProgram(p.Bank),
		Base:     map[symtab.Sym]symtab.Sym{},
		Patterns: map[symtab.Sym]string{},
	}

	goalPattern := PatternOf(q.Goal, nil)
	out.GoalAdornment = goalPattern
	if !derived[q.Goal.Pred] {
		out.Query = q
		return out, nil
	}

	type job struct {
		pred    symtab.Sym
		pattern string
	}
	adornedSym := func(pred symtab.Sym, pattern string) symtab.Sym {
		return syms.Intern(Name(syms.String(pred), pattern))
	}

	seen := map[job]bool{}
	var queue []job
	enqueue := func(j job) {
		if !seen[j] {
			seen[j] = true
			queue = append(queue, j)
		}
	}
	enqueue(job{q.Goal.Pred, goalPattern})

	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		jSym := adornedSym(j.pred, j.pattern)
		out.Base[jSym] = j.pred
		out.Patterns[jSym] = j.pattern

		for _, r := range p.Rules {
			if r.Head.Pred != j.pred {
				continue
			}
			if r.Head.Arity() != len(j.pattern) {
				return nil, fmt.Errorf("adorn: predicate %s arity %d does not match query pattern %q",
					syms.String(j.pred), r.Head.Arity(), j.pattern)
			}
			bound := map[symtab.Sym]bool{}
			for i, a := range r.Head.Args {
				if j.pattern[i] == 'b' {
					for _, v := range (ast.Literal{Args: []ast.Term{a}}).Vars() {
						bound[v] = true
					}
				}
			}
			newRule := ast.Rule{
				Head: ast.Literal{Pred: jSym, Args: r.Head.Args},
			}
			for _, l := range r.Body {
				name := syms.String(l.Pred)
				switch {
				case derived[l.Pred] && !ast.IsBuiltinName(name):
					pat := PatternOf(l, bound)
					enqueue(job{l.Pred, pat})
					newRule.Body = append(newRule.Body, ast.Literal{
						Pred:    adornedSym(l.Pred, pat),
						Args:    l.Args,
						Negated: l.Negated,
					})
				default:
					newRule.Body = append(newRule.Body, l)
				}
				// After a literal is evaluated all its variables are
				// bound (for negation and comparison builtins they had
				// to be bound already; eq/succ bind their free side).
				for _, v := range l.Vars() {
					bound[v] = true
				}
			}
			out.Program.Add(newRule)
		}
	}

	out.Query = ast.Query{Goal: ast.Literal{
		Pred: adornedSym(q.Goal.Pred, goalPattern),
		Args: q.Goal.Args,
	}}
	return out, nil
}
