package adorn

import (
	"strings"
	"testing"

	"lincount/internal/ast"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

func setup(t *testing.T, src, goal string) (*term.Bank, *ast.Program, ast.Query) {
	t.Helper()
	b := term.NewBank(symtab.New())
	res, err := parser.Parse(b, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(b, goal)
	if err != nil {
		t.Fatal(err)
	}
	return b, res.Program, q
}

func TestAdornSameGeneration(t *testing.T) {
	b, p, q := setup(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.GoalAdornment != "bf" {
		t.Errorf("goal adornment = %q", a.GoalAdornment)
	}
	got := a.Program.Format()
	want := `sg_bf(X,Y) :- flat(X,Y).
sg_bf(X,Y) :- up(X,X1), sg_bf(X1,Y1), down(Y1,Y).
`
	if got != want {
		t.Errorf("adorned program:\n%swant:\n%s", got, want)
	}
	if gq := ast.FormatQuery(b, a.Query); gq != "?- sg_bf(a,Y)." {
		t.Errorf("query = %q", gq)
	}
	sgbf := b.Symbols().Intern("sg_bf")
	if a.Patterns[sgbf] != "bf" || b.Symbols().String(a.Base[sgbf]) != "sg" {
		t.Error("Base/Patterns maps wrong")
	}
}

func TestAdornPropagatesDifferentPatterns(t *testing.T) {
	// The recursive call flips the binding: p(X,Y) calls p(Y1,X1) with
	// bound second argument.
	_, p, q := setup(t, `
p(X,Y) :- e(X,Y).
p(X,Y) :- e(X,X1), p(Y1,X1), e(Y1,Y).
`, "?- p(a,Y).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	text := a.Program.Format()
	if !strings.Contains(text, "p_fb(") || !strings.Contains(text, "p_bf(") {
		t.Errorf("expected both p_bf and p_fb in:\n%s", text)
	}
}

func TestAdornAllFree(t *testing.T) {
	_, p, q := setup(t, "p(X,Y) :- e(X,Y).\n", "?- p(X,Y).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.GoalAdornment != "ff" {
		t.Errorf("adornment = %q", a.GoalAdornment)
	}
	if !strings.Contains(a.Program.Format(), "p_ff") {
		t.Errorf("program:\n%s", a.Program.Format())
	}
}

func TestAdornExtensionalGoal(t *testing.T) {
	b, p, q := setup(t, "p(X) :- e(X).\n", "?- e(a,b).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Program.Rules) != 0 {
		t.Error("extensional goal produced rules")
	}
	if ast.FormatQuery(b, a.Query) != "?- e(a,b)." {
		t.Error("extensional goal was renamed")
	}
}

func TestAdornOnlyReachableRules(t *testing.T) {
	_, p, q := setup(t, `
p(X) :- e(X).
unrelated(X) :- e(X).
`, "?- p(a).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(a.Program.Format(), "unrelated") {
		t.Errorf("unreachable rule adorned:\n%s", a.Program.Format())
	}
}

func TestAdornBoundViaEarlierLiteral(t *testing.T) {
	// In the second body literal q is called with first arg bound
	// (X bound by head) and second arg bound (Z bound by e(X,Z)).
	_, p, q := setup(t, `
p(X,Y) :- e(X,Z), q(X,Z), e(Z,Y).
q(X,Y) :- e(X,Y).
`, "?- p(a,Y).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Program.Format(), "q_bb(") {
		t.Errorf("expected q_bb in:\n%s", a.Program.Format())
	}
}

func TestAdornConstantHeadArgs(t *testing.T) {
	// A constant in a head position is always bound, regardless of the
	// query pattern position.
	_, p, q := setup(t, `
p(root,X) :- base(X).
p(X,Y) :- e(X,X1), p(X1,Y).
`, "?- p(a,Y).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	text := a.Program.Format()
	if !strings.Contains(text, "p_bf(root,X)") {
		t.Errorf("adorned program:\n%s", text)
	}
}

func TestAdornRepeatedQueryVariable(t *testing.T) {
	// p(X,X) as a goal: both positions free (the repeat is enforced by
	// the answer filter, not the adornment).
	_, p, q := setup(t, "p(X,Y) :- e(X,Y).\n", "?- p(X,X).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.GoalAdornment != "ff" {
		t.Errorf("adornment = %q, want ff", a.GoalAdornment)
	}
}

func TestAdornCompoundQueryConstant(t *testing.T) {
	_, p, q := setup(t, `
p(X,Y) :- e(X,Y).
p(X,Y) :- e(X,Z), p(Z,Y).
`, "?- p(pair(a,b),Y).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.GoalAdornment != "bf" {
		t.Errorf("adornment = %q, want bf (ground compound is bound)", a.GoalAdornment)
	}
}

func TestAdornNegatedDerivedLiteral(t *testing.T) {
	_, p, q := setup(t, `
p(X) :- candidate(X), not blocked(X).
blocked(X) :- bad(X).
`, "?- p(a).")
	a, err := Adorn(p, q)
	if err != nil {
		t.Fatal(err)
	}
	text := a.Program.Format()
	if !strings.Contains(text, "not blocked_b(X)") {
		t.Errorf("negated derived literal not adorned:\n%s", text)
	}
}

func TestAdornArityMismatch(t *testing.T) {
	_, p, q := setup(t, "p(X,Y) :- e(X,Y).\n", "?- p(a).")
	if _, err := Adorn(p, q); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestPatternOfWithCompounds(t *testing.T) {
	b := term.NewBank(symtab.New())
	r, err := parser.ParseRule(b, "p(f(X),[Y|T],c) :- q(X,Y,T).")
	if err != nil {
		t.Fatal(err)
	}
	bound := map[symtab.Sym]bool{b.Symbols().Intern("X"): true}
	if got := PatternOf(r.Head, bound); got != "bfb" {
		t.Errorf("PatternOf = %q, want bfb", got)
	}
}

func TestBoundArgsSplit(t *testing.T) {
	b := term.NewBank(symtab.New())
	r, err := parser.ParseRule(b, "p(a,Y,c) :- q(Y).")
	if err != nil {
		t.Fatal(err)
	}
	bd, fr := BoundArgs(r.Head, "bfb")
	if len(bd) != 2 || len(fr) != 1 {
		t.Errorf("split = %d bound, %d free", len(bd), len(fr))
	}
	if ast.FormatTerm(b, fr[0]) != "Y" {
		t.Errorf("free arg = %s", ast.FormatTerm(b, fr[0]))
	}
}
