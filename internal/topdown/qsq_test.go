package topdown

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lincount/internal/adorn"
	"lincount/internal/database"
	"lincount/internal/engine"
	"lincount/internal/parser"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

type fixture struct {
	bank *term.Bank
	db   *database.Database
	a    *adorn.Adorned
}

func setup(t *testing.T, src, goal, facts string) *fixture {
	t.Helper()
	bank := term.NewBank(symtab.New())
	db := database.New(bank)
	if facts != "" {
		if err := db.LoadText(facts); err != nil {
			t.Fatal(err)
		}
	}
	res, err := parser.Parse(bank, src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(bank, goal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(res.Program, q)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{bank: bank, db: db, a: a}
}

func (f *fixture) qsqAnswers(t *testing.T) []string {
	t.Helper()
	res, err := Eval(f.a, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Answers))
	engine.SortTuplesFormatted(f.bank, res.Answers)
	for _, tu := range res.Answers {
		parts := make([]string, len(tu))
		for i, v := range tu {
			parts[i] = f.bank.Format(v)
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

func TestQSQSameGeneration(t *testing.T) {
	f := setup(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", `
up(a,b). up(b,c). flat(c,c2). flat(b,b2).
down(c2,x1). down(x1,x2). down(b2,x3).
up(z,w). flat(w,w2).
`)
	got := f.qsqAnswers(t)
	if fmt.Sprint(got) != "[a,x2 a,x3]" {
		t.Errorf("answers = %v", got)
	}
}

func TestQSQRestrictsToRelevantInputs(t *testing.T) {
	f := setup(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", `
up(a,b). flat(b,f). down(f,g).
up(z1,z2). up(z2,z3). up(z3,z4). flat(z4,q). down(q,r).
`)
	res, err := Eval(f.a, f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Inputs: a and b only — never the z branch.
	if res.Stats.InputTuples != 2 {
		t.Errorf("input tuples = %d, want 2", res.Stats.InputTuples)
	}
}

func TestQSQCyclicData(t *testing.T) {
	f := setup(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(a,Y).", `
up(a,b). up(b,c). up(c,d). up(d,e). up(e,d). up(b,e).
down(f,g). down(g,h). down(h,i). down(i,j). down(j,k). down(k,l).
flat(e,f).
`)
	got := f.qsqAnswers(t)
	if fmt.Sprint(got) != "[a,h a,j a,l]" {
		t.Errorf("Example 5 answers = %v", got)
	}
}

func TestQSQNonLinear(t *testing.T) {
	f := setup(t, `
tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`, "?- tc(a,Y).", "e(a,b). e(b,c). e(c,d). e(z,w).")
	got := f.qsqAnswers(t)
	if fmt.Sprint(got) != "[a,b a,c a,d]" {
		t.Errorf("tc = %v", got)
	}
}

func TestQSQMutualRecursion(t *testing.T) {
	f := setup(t, `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).
`, "?- p(a,Y).", `
up(a,b). over(b,c). flat(c,c2). flat(a,a2).
under(c2,u). down(u,v).
`)
	got := f.qsqAnswers(t)
	if fmt.Sprint(got) != "[a,a2 a,v]" {
		t.Errorf("p = %v", got)
	}
}

func TestQSQBuiltinsAndBaseNegation(t *testing.T) {
	f := setup(t, `
ok(X,Y) :- e(X,Y), not banned(Y).
next(X,N2) :- e(X,_), num(X,N), succ(N,N2), N2 > 1.
`, "?- ok(a,Y).", `
e(a,b). e(a,c). banned(b). num(a,1).
`)
	got := f.qsqAnswers(t)
	if fmt.Sprint(got) != "[a,c]" {
		t.Errorf("ok = %v", got)
	}
	f2 := setup(t, `
next(X,N2) :- e(X,_), num(X,N), succ(N,N2), N2 > 1.
`, "?- next(a,M).", "e(a,b). num(a,1).")
	if got := f2.qsqAnswers(t); fmt.Sprint(got) != "[a,2]" {
		t.Errorf("next = %v", got)
	}
}

func TestQSQRejectsNegatedDerived(t *testing.T) {
	f := setup(t, `
p(X) :- node(X), not q(X).
q(X) :- bad(X).
`, "?- p(a).", "node(a).")
	if _, err := Eval(f.a, f.db, Options{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestQSQAgainstBottomUpRandom(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		facts := randomFacts(seed)
		f := setup(t, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`, "?- sg(n0,Y).", facts)
		got := f.qsqAnswers(t)

		// Bottom-up reference.
		res, err := parser.Parse(f.bank, `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`)
		if err != nil {
			t.Fatal(err)
		}
		eres, err := engine.Eval(res.Program, f.db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		q, _ := parser.ParseQuery(f.bank, "?- sg(n0,Y).")
		var want []string
		for _, tu := range engine.Answers(eres, f.db, q) {
			want = append(want, f.bank.Format(tu[0])+","+f.bank.Format(tu[1]))
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("seed %d: qsq %v, bottom-up %v\nfacts: %s", seed, got, want, facts)
		}
	}
}

func randomFacts(seed int) string {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	var sb strings.Builder
	const nodes = 8
	for i := 0; i < 14; i++ {
		fmt.Fprintf(&sb, "up(n%d,n%d). ", next(nodes), next(nodes))
		fmt.Fprintf(&sb, "down(m%d,m%d). ", next(nodes), next(nodes))
	}
	for i := 0; i < nodes; i++ {
		if next(2) == 0 {
			fmt.Fprintf(&sb, "flat(n%d,m%d). ", i, next(nodes))
		}
	}
	return sb.String()
}
