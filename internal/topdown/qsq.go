// Package topdown implements the Query-SubQuery (QSQ) evaluation method
// (Vieille 1986), the set-at-a-time top-down strategy that the
// Bancilhon–Ramakrishnan comparisons — reference [4] of the paper — run
// alongside magic sets and counting. QSQ is the operational counterpart
// of the magic-set rewriting: instead of materializing magic predicates
// through rewritten rules, it maintains, per adorned predicate, the set of
// *input* (bound-argument) tuples asked so far and the set of *answers*
// derived, and propagates bindings sideways through rule bodies until both
// reach a fixpoint (the iterative QSQI variant, which is the easiest to
// show correct).
//
// Its presence lets the experiment suite cross-check the rewriting-based
// strategies against an independently implemented evaluation discipline.
package topdown

import (
	"context"
	"errors"
	"fmt"

	"lincount/internal/adorn"
	"lincount/internal/ast"
	"lincount/internal/database"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
	"lincount/internal/obsv"
	"lincount/internal/symtab"
	"lincount/internal/term"
)

// ErrUnsupported is returned for programs outside QSQ's scope here:
// negated derived literals (stratified top-down negation is a much larger
// machine than this reproduction needs).
var ErrUnsupported = errors.New("topdown: negated derived literals are not supported by QSQ")

// Stats counts the work of one evaluation.
type Stats struct {
	// Passes is the number of global fixpoint sweeps.
	Passes int
	// InputTuples is the total size of the input (subquery) sets — the
	// operational analogue of the magic set.
	InputTuples int
	// AnswerTuples is the total size of the answer sets.
	AnswerTuples int
	// Inferences counts successful head derivations, including
	// rederivations.
	Inferences int64
	// Probes counts index lookups and scans during sideways passing.
	Probes int64
	// ArenaValues is the number of term values resident in the input and
	// answer relations' arenas when the fixpoint completes.
	ArenaValues int64
}

// Result of a QSQ evaluation.
type Result struct {
	// Answers holds the goal predicate's answer tuples (full arity),
	// restricted to the query constants.
	Answers []database.Tuple
	Stats   Stats
}

// state is the per-adorned-predicate bookkeeping.
type state struct {
	pattern string
	input   *database.Relation // bound-argument tuples
	answers *database.Relation // full-arity tuples
}

type evaluator struct {
	a     *adorn.Adorned
	bank  *term.Bank
	db    *database.Database
	preds map[symtab.Sym]*state
	stats Stats
	// grewThisPass is set whenever an input or answer tuple is new.
	grewThisPass bool
	maxPasses    int
	check        *limits.Checker
	inject       *faultinject.Injector
	tracer       *obsv.Tracer
}

// tally recomputes the set-size counters from the per-predicate state;
// safe to call mid-fixpoint or after a failure.
func (ev *evaluator) tally() {
	ev.stats.InputTuples, ev.stats.AnswerTuples, ev.stats.ArenaValues = 0, 0, 0
	for _, st := range ev.preds {
		ev.stats.InputTuples += st.input.Len()
		ev.stats.AnswerTuples += st.answers.Len()
		ev.stats.ArenaValues += int64(st.input.ArenaLen() + st.answers.ArenaLen())
	}
}

// Options bounds an evaluation.
type Options struct {
	// MaxPasses bounds global sweeps (0 = 1,000,000).
	MaxPasses int
	// Inject, when non-nil, is consulted at QSQ's hook sites (per probe
	// and per global sweep). Nil costs one pointer comparison per site.
	Inject *faultinject.Injector
	// Tracer, when non-nil, records one span per global sweep with the
	// cumulative inference and probe counts. Nil costs one pointer
	// comparison per sweep.
	Tracer *obsv.Tracer
	// StatsOut, when non-nil, receives the evaluation's Stats even when
	// the fixpoint fails partway (pass limit, injected fault,
	// cancellation).
	StatsOut *Stats
}

// Eval runs QSQ for the adorned query over db.
func Eval(a *adorn.Adorned, db *database.Database, opts Options) (*Result, error) {
	return EvalContext(context.Background(), a, db, opts)
}

// EvalContext is Eval under a context: the global fixpoint polls ctx once
// per sweep and every few thousand probes or inferences, returning a
// cancellation error wrapping context.Cause(ctx) once it is done.
func EvalContext(ctx context.Context, a *adorn.Adorned, db *database.Database, opts Options) (*Result, error) {
	ev := &evaluator{
		a:         a,
		bank:      a.Program.Bank,
		db:        db,
		preds:     map[symtab.Sym]*state{},
		maxPasses: opts.MaxPasses,
		check:     limits.NewChecker(ctx, "topdown"),
		inject:    opts.Inject,
		tracer:    opts.Tracer,
	}
	if opts.StatsOut != nil {
		// Fill even on the error paths: a failed attempt's partial work
		// counters are what Auto-degradation reporting needs.
		defer func() {
			ev.tally()
			*opts.StatsOut = ev.stats
		}()
	}
	if ev.maxPasses == 0 {
		ev.maxPasses = 1_000_000
	}
	for p, pattern := range a.Patterns {
		nb := 0
		for i := 0; i < len(pattern); i++ {
			if pattern[i] == 'b' {
				nb++
			}
		}
		ev.preds[p] = &state{
			pattern: pattern,
			input:   database.NewRelation(nb),
			answers: database.NewRelation(len(pattern)),
		}
	}
	// Validate scope.
	for _, r := range a.Program.Rules {
		for _, l := range r.Body {
			if _, derived := ev.preds[l.Pred]; derived && l.Negated {
				return nil, fmt.Errorf("%w: %s", ErrUnsupported, ast.FormatLiteral(ev.bank, l))
			}
		}
	}

	// Seed the goal's input.
	goal := ev.preds[a.Query.Goal.Pred]
	if goal == nil {
		return nil, fmt.Errorf("topdown: goal %s has no rules", ast.FormatLiteral(ev.bank, a.Query.Goal))
	}
	seed := make(database.Tuple, 0, goal.input.Arity())
	boundArgs, _ := adorn.BoundArgs(a.Query.Goal, a.GoalAdornment)
	for _, t := range boundArgs {
		if !t.IsGround() {
			return nil, fmt.Errorf("topdown: query bound argument %s is not ground",
				ast.FormatTerm(ev.bank, t))
		}
		seed = append(seed, t.Value)
	}
	goal.input.Insert(seed)

	// Global fixpoint: sweep every rule against every input until no new
	// input or answer appears.
	for pass := 0; ; pass++ {
		if err := ev.check.Check(); err != nil {
			return nil, err
		}
		if err := ev.inject.Hit(faultinject.SiteTopdownPass); err != nil {
			return nil, err
		}
		if pass >= ev.maxPasses {
			return nil, &limits.ResourceLimitError{
				Kind: limits.KindPasses, Limit: int64(ev.maxPasses),
				Used: int64(pass), Component: "topdown",
			}
		}
		ev.stats.Passes++
		ev.grewThisPass = false
		psp := ev.tracer.Begin("qsq", "qsq.pass")
		for _, r := range ev.a.Program.Rules {
			if err := ev.sweepRule(r); err != nil {
				psp.End(obsv.A("pass", int64(pass)))
				return nil, err
			}
		}
		psp.End(obsv.A("pass", int64(pass)),
			obsv.A("inferences", ev.stats.Inferences),
			obsv.A("probes", ev.stats.Probes))
		if !ev.grewThisPass {
			break
		}
	}

	ev.tally()

	// Collect the goal's answers matching the query constants.
	var out []database.Tuple
	it := goal.answers.Scan()
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		t := database.Tuple(goal.answers.Row(id))
		match := true
		bound := map[symtab.Sym]term.Value{}
		for i, arg := range a.Query.Goal.Args {
			if !matchArg(ev.bank, arg, t[i], bound) {
				match = false
				break
			}
		}
		if match {
			// Clone is required: the result escapes this evaluation while t
			// is a view into the answers relation's arena.
			out = append(out, t.Clone())
		}
	}
	return &Result{Answers: out, Stats: ev.stats}, nil
}

func matchArg(bank *term.Bank, pat ast.Term, v term.Value, bound map[symtab.Sym]term.Value) bool {
	switch pat.Kind {
	case ast.Const:
		return pat.Value == v
	case ast.Var:
		if old, ok := bound[pat.Name]; ok {
			return old == v
		}
		bound[pat.Name] = v
		return true
	default:
		if !v.IsCompound() {
			return false
		}
		c := bank.Deref(v)
		if c.Functor != pat.Name || len(c.Args) != len(pat.Args) {
			return false
		}
		for i := range pat.Args {
			if !matchArg(bank, pat.Args[i], c.Args[i], bound) {
				return false
			}
		}
		return true
	}
}

// sweepRule runs one rule against every current input tuple of its head.
func (ev *evaluator) sweepRule(r ast.Rule) error {
	st := ev.preds[r.Head.Pred]
	boundArgs, _ := adorn.BoundArgs(r.Head, st.pattern)
	// The iterator snapshots the input set's length at creation:
	// subqueries registered during this sweep extend st.input but are
	// processed by the next global pass, exactly as the pre-arena
	// slice-range iteration behaved.
	it := st.input.Scan()
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		in := st.input.Row(id)
		bound := map[symtab.Sym]term.Value{}
		match := true
		for i, arg := range boundArgs {
			if !matchArg(ev.bank, arg, in[i], bound) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if err := ev.body(r, 0, bound); err != nil {
			return err
		}
	}
	return nil
}

// body processes rule r's body from literal i under the bindings,
// registering subqueries at derived literals and emitting head answers at
// the end.
func (ev *evaluator) body(r ast.Rule, i int, bound map[symtab.Sym]term.Value) error {
	if i == len(r.Body) {
		st := ev.preds[r.Head.Pred]
		t := make(database.Tuple, len(r.Head.Args))
		for j, arg := range r.Head.Args {
			v, ok := instantiate(ev.bank, arg, bound)
			if !ok {
				return fmt.Errorf("topdown: rule %s is unsafe: head argument %s unbound",
					ast.FormatRule(ev.bank, r), ast.FormatTerm(ev.bank, arg))
			}
			t[j] = v
		}
		ev.stats.Inferences++
		if err := ev.check.Tick(); err != nil {
			return err
		}
		if st.answers.Insert(t) {
			ev.grewThisPass = true
		}
		return nil
	}

	l := r.Body[i]
	name := ev.bank.Symbols().String(l.Pred)
	if ast.IsBuiltinName(name) {
		return ev.builtin(r, i, l, bound)
	}
	if st, derived := ev.preds[l.Pred]; derived {
		// Register the subquery.
		boundArgs, _ := adorn.BoundArgs(l, st.pattern)
		in := make(database.Tuple, len(boundArgs))
		for j, arg := range boundArgs {
			v, ok := instantiate(ev.bank, arg, bound)
			if !ok {
				return fmt.Errorf("topdown: rule %s: bound argument %s of %s not bound at call time",
					ast.FormatRule(ev.bank, r), ast.FormatTerm(ev.bank, arg), name)
			}
			in[j] = v
		}
		if st.input.Insert(in) {
			ev.grewThisPass = true
		}
		// Continue with the answers known so far.
		return ev.scan(r, i, l, st.answers, bound)
	}
	// Base literal (possibly negated).
	rel := ev.db.Relation(l.Pred)
	if l.Negated {
		probe := make(database.Tuple, len(l.Args))
		for j, arg := range l.Args {
			v, ok := instantiate(ev.bank, arg, bound)
			if !ok {
				return fmt.Errorf("topdown: rule %s: negated literal %s has unbound variables",
					ast.FormatRule(ev.bank, r), ast.FormatLiteral(ev.bank, l))
			}
			probe[j] = v
		}
		if rel != nil && rel.Contains(probe) {
			return nil
		}
		return ev.body(r, i+1, bound)
	}
	if rel == nil {
		return nil
	}
	return ev.scan(r, i, l, rel, bound)
}

// scan joins literal l against rel under the current bindings.
func (ev *evaluator) scan(r ast.Rule, i int, l ast.Literal, rel *database.Relation, bound map[symtab.Sym]term.Value) error {
	// Probe with the positions already ground.
	var mask uint64
	var probe []term.Value
	for j, arg := range l.Args {
		if v, ok := instantiate(ev.bank, arg, bound); ok {
			mask |= 1 << uint(j)
			probe = append(probe, v)
		}
	}
	try := func(t database.Tuple) error {
		local := map[symtab.Sym]term.Value{}
		for k, v := range bound {
			local[k] = v
		}
		for j, arg := range l.Args {
			if !matchArg(ev.bank, arg, t[j], local) {
				return nil
			}
		}
		return ev.body(r, i+1, local)
	}
	ev.stats.Probes++
	if err := ev.check.Tick(); err != nil {
		return err
	}
	if err := ev.inject.Hit(faultinject.SiteTopdownProbe); err != nil {
		return err
	}
	// Probe and Scan snapshot rel's length: answers derived while this
	// literal's matches recurse belong to the next pass, as before.
	it := rel.Probe(mask, probe)
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		if err := try(database.Tuple(rel.Row(id))); err != nil {
			return err
		}
	}
	return nil
}

func instantiate(bank *term.Bank, t ast.Term, bound map[symtab.Sym]term.Value) (term.Value, bool) {
	switch t.Kind {
	case ast.Const:
		return t.Value, true
	case ast.Var:
		v, ok := bound[t.Name]
		return v, ok
	default:
		args := make([]term.Value, len(t.Args))
		for i, a := range t.Args {
			v, ok := instantiate(bank, a, bound)
			if !ok {
				return 0, false
			}
			args[i] = v
		}
		return bank.Compound(t.Name, args...), true
	}
}

// builtin evaluates the builtins QSQ supports (the same set as the
// engine); eq and succ may bind one plain variable.
func (ev *evaluator) builtin(r ast.Rule, i int, l ast.Literal, bound map[symtab.Sym]term.Value) error {
	name := ev.bank.Symbols().String(l.Pred)
	if len(l.Args) != 2 {
		return fmt.Errorf("topdown: builtin %s expects 2 arguments", name)
	}
	x, xok := instantiate(ev.bank, l.Args[0], bound)
	y, yok := instantiate(ev.bank, l.Args[1], bound)
	cont := func(extra symtab.Sym, v term.Value) error {
		if extra == symtab.None {
			return ev.body(r, i+1, bound)
		}
		local := map[symtab.Sym]term.Value{}
		for k, vv := range bound {
			local[k] = vv
		}
		local[extra] = v
		return ev.body(r, i+1, local)
	}
	const maxTermInt = 1<<61 - 1
	switch name {
	case ast.BuiltinEq:
		switch {
		case xok && yok:
			if x == y {
				return cont(symtab.None, 0)
			}
			return nil
		case xok && l.Args[1].Kind == ast.Var:
			return cont(l.Args[1].Name, x)
		case yok && l.Args[0].Kind == ast.Var:
			return cont(l.Args[0].Name, y)
		}
		return fmt.Errorf("topdown: = with both sides unbound in %s", ast.FormatRule(ev.bank, r))
	case ast.BuiltinSucc:
		switch {
		case xok && yok:
			if x.IsInt() && y.IsInt() && x.AsInt() < maxTermInt && y.AsInt() == x.AsInt()+1 {
				return cont(symtab.None, 0)
			}
			return nil
		case xok && l.Args[1].Kind == ast.Var:
			if !x.IsInt() || x.AsInt() >= maxTermInt {
				return nil
			}
			return cont(l.Args[1].Name, term.Int(x.AsInt()+1))
		case yok && l.Args[0].Kind == ast.Var:
			if !y.IsInt() || y.AsInt() <= -(1<<61) {
				return nil
			}
			return cont(l.Args[0].Name, term.Int(y.AsInt()-1))
		}
		return fmt.Errorf("topdown: succ with both sides unbound in %s", ast.FormatRule(ev.bank, r))
	default:
		if !xok || !yok {
			return fmt.Errorf("topdown: comparison %s with unbound side in %s", name, ast.FormatRule(ev.bank, r))
		}
		var c int
		if x.IsInt() && y.IsInt() {
			switch {
			case x.AsInt() < y.AsInt():
				c = -1
			case x.AsInt() > y.AsInt():
				c = 1
			}
		} else {
			c = term.Compare(x, y)
		}
		ok := false
		switch name {
		case ast.BuiltinNeq:
			ok = c != 0
		case ast.BuiltinLt:
			ok = c < 0
		case ast.BuiltinLe:
			ok = c <= 0
		case ast.BuiltinGt:
			ok = c > 0
		case ast.BuiltinGe:
			ok = c >= 0
		}
		if ok {
			return cont(symtab.None, 0)
		}
		return nil
	}
}
