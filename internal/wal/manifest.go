package wal

// The manifest ties a checkpoint to the log: a single JSON file naming
// the snapshot that captures every epoch up to Seq and the segment that
// holds every record after it. It is replaced atomically (temp file,
// fsync, rename, directory fsync), so a crash at any byte leaves either
// the old pair or the new pair — both loadable.
//
// Recovery does not trust the manifest alone for segment discovery: a
// crash between segment rotation and the manifest write leaves a live
// segment the manifest has never heard of, so recovery replays the
// manifest's segment and then every higher-numbered segment in the
// directory, in order. Segment numbers are the epoch current at their
// creation, zero-padded so lexicographic order is numeric order.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ManifestName is the manifest's file name inside a data directory.
const ManifestName = "MANIFEST"

// Manifest points at the durable pair: the checkpoint snapshot covering
// epochs ≤ Seq and the segment recording epochs > Seq.
type Manifest struct {
	// Seq is the epoch captured by Snapshot.
	Seq uint64 `json:"seq"`
	// Snapshot is the LCDB2 snapshot's file name (relative to the data
	// directory).
	Snapshot string `json:"snapshot"`
	// Segment is the live segment's file name at manifest-write time.
	Segment string `json:"segment"`
}

// SegmentName returns the canonical segment file name for a rotation at
// epoch seq.
func SegmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// SnapshotFileName returns the canonical checkpoint snapshot name for
// epoch seq.
func SnapshotFileName(seq uint64) string { return fmt.Sprintf("snap-%016d.lcdb", seq) }

// SegmentSeq extracts the creation epoch from a segment file name.
func SegmentSeq(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// SegmentInfo is one discovered segment file.
type SegmentInfo struct {
	Name string
	Seq  uint64
}

// ListSegments returns the data directory's segment files in ascending
// creation-epoch order.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := SegmentSeq(e.Name()); ok {
			segs = append(segs, SegmentInfo{Name: e.Name(), Seq: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// WriteManifest atomically replaces dir's manifest: temp file, fsync,
// rename, directory fsync.
func WriteManifest(dir string, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wal: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: writing manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publishing manifest: %w", err)
	}
	return syncDir(dir)
}

// ReadManifest loads dir's manifest, returning (nil, nil) when none
// exists (a fresh data directory, or one that has never checkpointed).
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wal: corrupt manifest (the write path replaces it atomically; this is tampering or filesystem damage): %w", err)
	}
	if m.Snapshot == "" || m.Segment == "" {
		return nil, errors.New("wal: corrupt manifest: missing snapshot or segment name")
	}
	if _, ok := SegmentSeq(m.Segment); !ok {
		return nil, fmt.Errorf("wal: corrupt manifest: unparsable segment name %q", m.Segment)
	}
	return &m, nil
}
