package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"hash/crc32"
	"testing"
)

// goldenLog is the byte-exact LCWL1 encoding of two fixed records:
//
//	{Seq: 1, Ops: [assert "f(a,b). "]}
//	{Seq: 2, Ops: [assert "f(b,c). ", retract "f(a,b). "]}
//
// The hex is frozen so that any change to the framing, the varint
// layout, or the CRC function shows up as a test failure and forces a
// deliberate format-version bump rather than a silent incompatibility
// with logs already on disk.
const goldenLog = "4c43574c31" + // "LCWL1"
	"0c000000e65cb321" + // len=12, crc
	"010100086628612c62292e20" + // seq=1, 1 op: assert "f(a,b). "
	"1600000071" + "5c8d65" + // len=22, crc
	"020200086628622c63292e2001086628612c62292e20" // seq=2, 2 ops

func goldenRecords() []Record {
	return []Record{
		{Seq: 1, Ops: []Op{{Text: "f(a,b). "}}},
		{Seq: 2, Ops: []Op{{Text: "f(b,c). "}, {Retract: true, Text: "f(a,b). "}}},
	}
}

func goldenBytes(t testing.TB) []byte {
	t.Helper()
	data, err := hex.DecodeString(goldenLog)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestGoldenLogBytes(t *testing.T) {
	var buf []byte
	buf = append(buf, Magic...)
	for _, rec := range goldenRecords() {
		var err error
		buf, err = encodeRecord(buf, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	want := goldenBytes(t)
	if !bytes.Equal(buf, want) {
		t.Fatalf("encoding changed:\n got %x\nwant %x\n"+
			"(on-disk logs use this layout; bump the magic if the change is intentional)", buf, want)
	}
}

func TestGoldenLogReplays(t *testing.T) {
	var got []Record
	res, err := Replay(bytes.NewReader(goldenBytes(t)), 0, true, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := goldenRecords()
	if len(got) != len(want) || res.LastSeq != 2 {
		t.Fatalf("replayed %+v (res %+v), want %+v", got, res, want)
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || len(got[i].Ops) != len(want[i].Ops) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
		for j := range want[i].Ops {
			if got[i].Ops[j] != want[i].Ops[j] {
				t.Fatalf("record %d op %d: %+v != %+v", i, j, got[i].Ops[j], want[i].Ops[j])
			}
		}
	}
}

// FuzzReplayWAL feeds arbitrary bytes to the replay scanner and checks
// the recovery contract no input can break:
//
//   - replay never panics;
//   - a record whose CRC does not match is never handed to fn;
//   - in lenient (live tail) mode a successful scan accounts for every
//     byte: GoodSize + TornBytes == len(input);
//   - truncating to GoodSize yields a log that replays cleanly under
//     the strict mode with the same records — the torn tail really was
//     only the tail;
//   - strict mode never succeeds where lenient mode failed.
func FuzzReplayWAL(f *testing.F) {
	valid := func() []byte {
		data, _ := hex.DecodeString(goldenLog)
		return data
	}()

	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("LCDB2 wrong magic"))
	f.Add(valid)
	// Truncations: torn header, torn payload, mid-magic.
	for _, cut := range []int{3, len(Magic), len(Magic) + 3, len(Magic) + frameHeaderLen + 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Bit flips in the header, a length prefix, a CRC, and a payload.
	for _, off := range []int{0, len(Magic), len(Magic) + 4, len(Magic) + frameHeaderLen} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		f.Add(mut)
	}
	// A CRC-valid but undecodable payload: corrupt the op kind byte and
	// fix the checksum up, so decodePayload (not the CRC) must reject it.
	{
		mut := append([]byte(nil), valid...)
		pstart := len(Magic) + frameHeaderLen
		plen := int(binary.LittleEndian.Uint32(mut[len(Magic):]))
		mut[pstart+2] = 0x7f // op kind must be 0 or 1
		binary.LittleEndian.PutUint32(mut[len(Magic)+4:], crc32.ChecksumIEEE(mut[pstart:pstart+plen]))
		f.Add(mut)
	}
	// An appended garbage tail after valid records.
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		const startSeq = 0
		var lenientRecs []Record
		lenientRes, lenientErr := Replay(bytes.NewReader(data), startSeq, false, func(rec Record) error {
			lenientRecs = append(lenientRecs, rec)
			return nil
		})

		// Every applied record's bytes must carry a valid CRC and a
		// strictly advancing seq.
		last := uint64(startSeq)
		for _, rec := range lenientRecs {
			if rec.Seq <= last {
				t.Fatalf("applied record with non-advancing seq %d after %d", rec.Seq, last)
			}
			last = rec.Seq
		}

		if lenientErr == nil {
			if lenientRes.GoodSize+lenientRes.TornBytes != int64(len(data)) {
				t.Fatalf("lenient scan lost bytes: GoodSize %d + TornBytes %d != %d",
					lenientRes.GoodSize, lenientRes.TornBytes, len(data))
			}
			// The intact prefix must replay cleanly and completely under
			// strict mode.
			count := 0
			strictRes, strictErr := Replay(bytes.NewReader(data[:lenientRes.GoodSize]), startSeq, true, func(Record) error {
				count++
				return nil
			})
			if strictErr != nil {
				t.Fatalf("intact prefix failed strict replay: %v", strictErr)
			}
			if count != lenientRes.Records || strictRes.LastSeq != lenientRes.LastSeq {
				t.Fatalf("prefix replay diverged: %d/%d records, last seq %d/%d",
					count, lenientRes.Records, strictRes.LastSeq, lenientRes.LastSeq)
			}
		}

		// Strict mode must never accept what lenient mode rejected, and
		// on clean (untorn) input the two must agree.
		_, strictErr := Replay(bytes.NewReader(data), startSeq, true, nil)
		if lenientErr != nil && strictErr == nil {
			t.Fatalf("strict accepted input lenient rejected: %v", lenientErr)
		}
		if lenientErr == nil && lenientRes.TornBytes == 0 && strictErr != nil {
			t.Fatalf("strict rejected untorn input lenient accepted: %v", strictErr)
		}
	})
}
