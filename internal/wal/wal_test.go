package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lincount/internal/faultinject"
)

func testRecords() []Record {
	return []Record{
		{Seq: 1, Ops: []Op{{Text: "f(a,b). f(b,c). "}}},
		{Seq: 2, Ops: []Op{{Text: "f(c,d). "}, {Retract: true, Text: "f(a,b). "}}},
		{Seq: 3, Ops: []Op{{Retract: true, Text: "f(b,c). "}}},
	}
}

func writeSegment(t *testing.T, path string, recs []Record, opts Options) {
	t.Helper()
	w, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, path string, startSeq uint64, strict bool) ([]Record, *ReplayResult, error) {
	t.Helper()
	var got []Record
	res, err := ReplayFile(path, startSeq, strict, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	return got, res, err
}

// frameStarts walks an intact segment image and returns each record
// frame's byte offset, plus the end-of-file offset as a final element.
func frameStarts(t *testing.T, data []byte) []int64 {
	t.Helper()
	offsets := []int64{int64(len(Magic))}
	off := int64(len(Magic))
	for off < int64(len(data)) {
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		off += frameHeaderLen + plen
		offsets = append(offsets, off)
	}
	if off != int64(len(data)) {
		t.Fatalf("segment does not end on a frame boundary (off %d, len %d)", off, len(data))
	}
	return offsets
}

func isCorrupt(err error) bool {
	var c *WALCorruptError
	return errors.As(err, &c)
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(0))
	recs := testRecords()
	writeSegment(t, path, recs, Options{Sync: SyncAlways})

	got, res, err := replayAll(t, path, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed %+v, want %+v", got, recs)
	}
	if res.Records != len(recs) || res.LastSeq != 3 || res.TornBytes != 0 {
		t.Fatalf("result = %+v", res)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodSize != st.Size() {
		t.Fatalf("GoodSize = %d, file size = %d", res.GoodSize, st.Size())
	}
}

func TestReplayTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	writeSegment(t, path, testRecords(), Options{})
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	starts := frameStarts(t, whole)
	lastStart := int(starts[len(starts)-2]) // third record's frame offset

	// Cut inside the final record's frame header and inside its payload:
	// both are the residue of a crash mid-append, so the lenient (live
	// tail) scan replays the first two records and reports the tear.
	for _, cut := range []int{lastStart + 1, lastStart + frameHeaderLen - 1, lastStart + frameHeaderLen + 2, len(whole) - 1} {
		tpath := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(tpath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res, err := replayAll(t, tpath, 0, false)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 2 || res.Records != 2 || res.LastSeq != 2 {
			t.Fatalf("cut %d: replayed %d records (res %+v), want 2", cut, len(got), res)
		}
		if res.GoodSize != int64(lastStart) || res.TornBytes != int64(cut-lastStart) {
			t.Fatalf("cut %d: GoodSize=%d TornBytes=%d, want %d and %d",
				cut, res.GoodSize, res.TornBytes, lastStart, cut-lastStart)
		}
		// The same tear in a rotated (non-live) segment is corruption:
		// rotation syncs and closes segments, so they cannot legally tear.
		if _, _, err := replayAll(t, tpath, 0, true); !isCorrupt(err) {
			t.Fatalf("cut %d strict: err = %v, want WALCorruptError", cut, err)
		}
	}
}

func TestReplayMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	writeSegment(t, path, testRecords(), Options{})
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the first record's payload: the CRC fails and
	// there is more data after it — bit rot, not a torn tail, even in
	// lenient (live tail) mode.
	for _, off := range []int{len(Magic) + frameHeaderLen, len(Magic) + frameHeaderLen + 3} {
		bad := append([]byte(nil), whole...)
		bad[off] ^= 0xff
		bpath := filepath.Join(dir, "bad.log")
		if err := os.WriteFile(bpath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, err := replayAll(t, bpath, 0, false)
		if !isCorrupt(err) {
			t.Fatalf("offset %d: err = %v, want WALCorruptError", off, err)
		}
		if len(got) != 0 {
			t.Fatalf("offset %d: %d records applied before corruption was detected", off, len(got))
		}
	}
}

func TestReplayBadCRCAtTailTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	writeSegment(t, path, testRecords(), Options{})
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), whole...)
	bad[len(bad)-1] ^= 0xff // inside the final record's payload
	bpath := filepath.Join(dir, "tail.log")
	if err := os.WriteFile(bpath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res, err := replayAll(t, bpath, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || res.TornBytes == 0 {
		t.Fatalf("replayed %d records, TornBytes=%d; want 2 records and a nonzero tear", len(got), res.TornBytes)
	}
	if _, _, err := replayAll(t, bpath, 0, true); !isCorrupt(err) {
		t.Fatalf("strict: err = %v, want WALCorruptError", err)
	}
}

func TestReplaySequenceMustAdvance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Seq: 5, Ops: []Op{{Text: "f(a,b). "}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Seq: 5, Ops: []Op{{Text: "f(b,c). "}}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := replayAll(t, path, 0, false); !isCorrupt(err) {
		t.Fatalf("repeated seq: err = %v, want WALCorruptError", err)
	}

	// A first record at or below the checkpoint seq is equally bad.
	path2 := filepath.Join(dir, SegmentName(1))
	writeSegment(t, path2, []Record{{Seq: 3, Ops: []Op{{Text: "f(a,b). "}}}}, Options{})
	if _, _, err := replayAll(t, path2, 3, false); !isCorrupt(err) {
		t.Fatalf("seq <= startSeq: err = %v, want WALCorruptError", err)
	}
}

func TestOpenAtResumesAppending(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	writeSegment(t, path, testRecords()[:2], Options{})
	// Simulate a torn tail behind the intact prefix.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, res, err := replayAll(t, path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.TornBytes != 6 {
		t.Fatalf("res = %+v, want 2 records and 6 torn bytes", res)
	}
	w, err := OpenAt(path, res.GoodSize, res.Records, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Seq: 3, Ops: []Op{{Text: "f(x,y). "}}}); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 3 {
		t.Fatalf("Records() = %d, want 3", w.Records())
	}
	w.Close()

	got, res, err := replayAll(t, path, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || res.LastSeq != 3 {
		t.Fatalf("after resume: %d records, last seq %d; want 3 and 3", len(got), res.LastSeq)
	}
}

func TestAppendInjectedFaultLeavesLogIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(0))
	inj := faultinject.New(1)
	inj.FailAt(faultinject.SiteWALAppend, 1)
	inj.FailAt(faultinject.SiteWALFsync, 2)
	w, err := Create(path, Options{Sync: SyncAlways, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Seq: 1, Ops: []Op{{Text: "f(a,b). "}}}

	// First append: the append site fires before any byte is written.
	if err := w.Append(rec); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if w.Size() != int64(len(Magic)) {
		t.Fatalf("size = %d after failed append, want header only", w.Size())
	}
	// Second append succeeds: its fsync is hit 1, and the fsync rule is
	// armed at hit 2.
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	// Third append: the frame's bytes land, then the fsync site fires —
	// the frame must be rolled back so the segment stays intact.
	rec2 := Record{Seq: 2, Ops: []Op{{Text: "f(b,c). "}}}
	sizeBefore := w.Size()
	if err := w.Append(rec2); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fsync fault", err)
	}
	if w.Size() != sizeBefore {
		t.Fatalf("size = %d after rolled-back append, want %d", w.Size(), sizeBefore)
	}
	// Retry lands cleanly.
	if err := w.Append(rec2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got, _, err := replayAll(t, path, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("replayed %+v, want exactly seq 1 and 2", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := ReadManifest(dir)
	if err != nil || m != nil {
		t.Fatalf("fresh dir: manifest = %+v, err = %v; want nil, nil", m, err)
	}
	want := Manifest{Seq: 7, Snapshot: SnapshotFileName(7), Segment: SegmentName(7)}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	m, err = ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *m != want {
		t.Fatalf("manifest = %+v, want %+v", *m, want)
	}
	// Replacement is total: the second write fully supersedes the first.
	want2 := Manifest{Seq: 12, Snapshot: SnapshotFileName(12), Segment: SegmentName(12)}
	if err := WriteManifest(dir, want2); err != nil {
		t.Fatal(err)
	}
	if m, _ := ReadManifest(dir); *m != want2 {
		t.Fatalf("manifest = %+v, want %+v", *m, want2)
	}
	// Garbage is rejected, not half-parsed.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestListSegmentsOrder(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{12, 0, 7} {
		if err := os.WriteFile(filepath.Join(dir, SegmentName(seq)), []byte(Magic), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Distractors that must not be listed.
	for _, name := range []string{ManifestName, SnapshotFileName(7), "wal-x.log", "wal-1.log.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for _, s := range segs {
		seqs = append(seqs, s.Seq)
	}
	if !reflect.DeepEqual(seqs, []uint64{0, 7, 12}) {
		t.Fatalf("segments = %v, want [0 7 12]", seqs)
	}
}

func TestReplayRejectsBadMagic(t *testing.T) {
	dir := t.TempDir()
	for _, content := range [][]byte{nil, []byte("LC"), []byte("LCDB2"), []byte("garbage here")} {
		path := filepath.Join(dir, "seg.log")
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := replayAll(t, path, 0, false); !isCorrupt(err) {
			t.Fatalf("content %q: err = %v, want WALCorruptError", content, err)
		}
	}
}

func TestReplayEmptySegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(0))
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, res, err := replayAll(t, path, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || res.LastSeq != 9 || res.GoodSize != int64(len(Magic)) {
		t.Fatalf("empty segment: got %v, res %+v", got, res)
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 999, 1 << 40} {
		name := SegmentName(seq)
		got, ok := SegmentSeq(name)
		if !ok || got != seq {
			t.Fatalf("SegmentSeq(%q) = %d, %v", name, got, ok)
		}
	}
	for _, bad := range []string{"wal-.log", "wal-1x.log", "snap-1.lcdb", "wal-1.log.tmp"} {
		if _, ok := SegmentSeq(bad); ok {
			t.Fatalf("SegmentSeq(%q) accepted", bad)
		}
	}
}

func TestRecordEncodeDecode(t *testing.T) {
	for _, rec := range append(testRecords(),
		Record{Seq: 1 << 60, Ops: nil},
		Record{Seq: 42, Ops: []Op{{Text: ""}, {Retract: true, Text: "x(y). "}}},
	) {
		buf, err := encodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodePayload(buf[frameHeaderLen:])
		if err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if got.Seq != rec.Seq || len(got.Ops) != len(rec.Ops) {
			t.Fatalf("roundtrip %+v -> %+v", rec, got)
		}
		for i := range rec.Ops {
			if got.Ops[i] != rec.Ops[i] {
				t.Fatalf("op %d: %+v != %+v", i, got.Ops[i], rec.Ops[i])
			}
		}
	}
}
