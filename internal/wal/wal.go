// Package wal implements lincountd's write-ahead log: an append-only,
// CRC-checked record stream of assert/retract batches that makes every
// acknowledged write durable before it becomes visible, plus the
// rename-atomic manifest that ties a checkpoint snapshot to the live log
// segment.
//
// On-disk segment layout (magic "LCWL1"):
//
//	magic "LCWL1"
//	records: each
//	  payload length  uint32 little-endian
//	  CRC-32 (IEEE)   uint32 little-endian, over the payload alone
//	  payload:
//	    seq     uvarint  (the epoch this batch published)
//	    nops    uvarint
//	    per op: kind byte (0 assert, 1 retract),
//	            uvarint text length, fact text bytes
//
// The format is deliberately boring: the single writer appends whole
// records with one Write call, so a crash tears at most the final
// record, and the CRC plus the length prefix make the tear detectable.
// Replay distinguishes the two failure modes the recovery contract
// cares about:
//
//   - A torn tail (short header, short payload, or a bad-CRC record
//     that is the last thing in the file) is the expected residue of a
//     crash mid-append: replay stops cleanly before it and reports the
//     offset so the writer can truncate and resume.
//   - Anything wrong before the tail — a bad CRC followed by more data,
//     a garbage length, a non-monotonic sequence number, an undecodable
//     payload that passed its CRC — is bit rot or tampering, and replay
//     refuses with a typed *WALCorruptError rather than silently
//     dropping acknowledged writes.
//
// Sequence numbers are the server's epoch numbers: every record's seq
// must strictly exceed its predecessor's (and the checkpoint seq it
// replays on top of), so recovery can prove it rebuilt an unbroken
// chain of published batches.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"lincount/internal/faultinject"
	"lincount/internal/obsv"
)

// Magic is the segment-file magic. LCWL1 parallels the LCDB2 snapshot
// magic: "lincount write-ahead log, format 1".
const Magic = "LCWL1"

// frameHeaderLen is the fixed per-record framing: payload length plus
// payload CRC, both uint32 little-endian.
const frameHeaderLen = 8

// maxRecordBytes is a sanity cap on a single record's payload. A real
// record is bounded by the server's batch size times its request-body
// cap; a length prefix past this is bit rot, not data.
const maxRecordBytes = 1 << 30

// SyncPolicy selects when the writer fsyncs the segment after an append.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged write is on
	// disk before the acknowledgment. The durability default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.Interval: a crash can
	// lose up to one interval of acknowledged writes.
	SyncInterval
	// SyncNever leaves flushing to the OS (and to segment rotation):
	// fastest, weakest.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always, interval, never)", s)
}

// Options parameterizes a Writer.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the maximum fsync lag under SyncInterval (default 50ms).
	Interval time.Duration
	// Inject, when non-nil, arms the wal.append and wal.fsync fault
	// sites — the chaos harness's hook into the durable write path.
	Inject *faultinject.Injector
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	return o
}

// Op is one logged operation: fact text to assert or retract, exactly
// as the write request carried it.
type Op struct {
	// Retract selects retraction; false means assertion.
	Retract bool
	// Text is the fact text ("up(a,b). flat(b,c).").
	Text string
}

// Record is one logged batch: the epoch it published plus its
// operations in application order.
type Record struct {
	Seq uint64
	Ops []Op
}

// WALCorruptError reports log damage that is not a torn tail: bit rot
// before the last record, a garbage length prefix, a sequence number
// that does not advance, or an undecodable payload whose CRC passed.
// Recovery treats it as fatal — serving from a log with a hole in the
// middle would silently drop acknowledged writes.
type WALCorruptError struct {
	// Path is the segment file, when known.
	Path string
	// Offset is the byte offset of the bad record's frame header.
	Offset int64
	// Reason describes the failed check.
	Reason string
	// Want and Got are the stored and computed CRC-32 values when the
	// failure was a checksum mismatch; zero otherwise.
	Want, Got uint32
}

func (e *WALCorruptError) Error() string {
	loc := fmt.Sprintf("offset %d", e.Offset)
	if e.Path != "" {
		loc = fmt.Sprintf("%s, offset %d", e.Path, e.Offset)
	}
	if e.Want != 0 || e.Got != 0 {
		return fmt.Sprintf("wal: corrupt log (%s): %s (stored crc %08x, computed %08x)",
			loc, e.Reason, e.Want, e.Got)
	}
	return fmt.Sprintf("wal: corrupt log (%s): %s", loc, e.Reason)
}

// encodeRecord appends rec's framed bytes (header + payload) to buf.
func encodeRecord(buf []byte, rec Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Ops)))
	for _, op := range rec.Ops {
		kind := byte(0)
		if op.Retract {
			kind = 1
		}
		buf = append(buf, kind)
		buf = binary.AppendUvarint(buf, uint64(len(op.Text)))
		buf = append(buf, op.Text...)
	}
	payload := buf[start+frameHeaderLen:]
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// decodePayload parses a record payload whose CRC already checked out.
// Errors here mean the writer emitted garbage (or an adversary forged a
// CRC) — replay maps them to WALCorruptError.
func decodePayload(payload []byte) (Record, error) {
	var rec Record
	br := bytes.NewReader(payload)
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return rec, fmt.Errorf("reading seq: %w", err)
	}
	nops, err := binary.ReadUvarint(br)
	if err != nil {
		return rec, fmt.Errorf("reading op count: %w", err)
	}
	if nops > uint64(len(payload)) {
		return rec, fmt.Errorf("op count %d exceeds payload size", nops)
	}
	rec.Seq = seq
	rec.Ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return rec, fmt.Errorf("reading op %d kind: %w", i, err)
		}
		if kind > 1 {
			return rec, fmt.Errorf("op %d has bad kind %d", i, kind)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return rec, fmt.Errorf("reading op %d length: %w", i, err)
		}
		if n > uint64(len(payload)) {
			return rec, fmt.Errorf("op %d length %d exceeds payload size", i, n)
		}
		text := make([]byte, n)
		if _, err := io.ReadFull(br, text); err != nil {
			return rec, fmt.Errorf("reading op %d text: %w", i, err)
		}
		rec.Ops = append(rec.Ops, Op{Retract: kind == 1, Text: string(text)})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return rec, errors.New("trailing bytes after last op")
	}
	return rec, nil
}

// Writer appends records to one segment file. It is not safe for
// concurrent Append calls (the server's single-writer goroutine owns
// it); Size and Records may be read from other goroutines.
type Writer struct {
	path string
	f    *os.File
	opts Options

	mu       chan struct{} // 1-token mutex guarding size/records vs readers
	size     int64
	records  int
	lastSync time.Time

	// broken, once set, fails every further Append: a failed append
	// could not be rolled back, so the tail may be torn mid-file and
	// appending past it would turn a recoverable tear into corruption.
	broken error
}

// Create creates (or atomically replaces) the segment at path: the
// magic is written to a temp file, fsynced, renamed into place, and the
// directory fsynced, so the segment either exists with a whole header
// or not at all.
func Create(path string, opts Options) (*Writer, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.WriteString(Magic); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: syncing segment header: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: publishing segment: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return newWriter(path, f, int64(len(Magic)), 0, opts), nil
}

// OpenAt opens an existing segment for appending after recovery:
// goodSize is the offset after the last intact record (ReplayFile's
// GoodSize) and records that segment's replayed record count. Any torn
// tail past goodSize is truncated away before the first append.
func OpenAt(path string, goodSize int64, records int, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	if goodSize < int64(len(Magic)) || goodSize > st.Size() {
		f.Close()
		return nil, fmt.Errorf("wal: resume offset %d out of range for %s (%d bytes)", goodSize, path, st.Size())
	}
	if goodSize < st.Size() {
		// Drop the torn tail so resumed appends extend an intact chain.
		if err := f.Truncate(goodSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing truncated segment: %w", err)
		}
	}
	if _, err := f.Seek(goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking segment tail: %w", err)
	}
	return newWriter(path, f, goodSize, records, opts), nil
}

func newWriter(path string, f *os.File, size int64, records int, opts Options) *Writer {
	w := &Writer{
		path:    path,
		f:       f,
		opts:    opts.withDefaults(),
		mu:      make(chan struct{}, 1),
		size:    size,
		records: records,
	}
	w.mu <- struct{}{}
	return w
}

func (w *Writer) lock()   { <-w.mu }
func (w *Writer) unlock() { w.mu <- struct{}{} }

// Path returns the segment file path.
func (w *Writer) Path() string { return w.path }

// Size returns the segment's intact byte length (header included).
func (w *Writer) Size() int64 {
	w.lock()
	defer w.unlock()
	return w.size
}

// Records returns how many records the segment holds (replayed ones
// included when opened with OpenAt).
func (w *Writer) Records() int {
	w.lock()
	defer w.unlock()
	return w.records
}

// Append encodes rec, writes it as one frame, and fsyncs per the sync
// policy. On any failure the partial frame is rolled back (the file is
// truncated to its pre-append size) so the segment stays intact and the
// caller may retry; if even the rollback fails, the writer marks itself
// broken and every later Append returns the breakage error.
func (w *Writer) Append(rec Record) error {
	w.lock()
	defer w.unlock()
	if w.broken != nil {
		return w.broken
	}
	if err := w.opts.Inject.Hit(faultinject.SiteWALAppend); err != nil {
		return err
	}
	buf, err := encodeRecord(nil, rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return w.rollback(fmt.Errorf("wal: appending record: %w", err))
	}
	if err := w.maybeSync(); err != nil {
		return w.rollback(err)
	}
	w.size += int64(len(buf))
	w.records++
	obsv.MWALRecords.Add(1)
	obsv.MWALBytes.Add(int64(len(buf)))
	return nil
}

// rollback restores the segment to its last intact size after a failed
// append; if the truncate fails too, the writer is marked broken.
func (w *Writer) rollback(cause error) error {
	if err := w.f.Truncate(w.size); err != nil {
		w.broken = fmt.Errorf("wal: segment unusable (failed append could not be rolled back: %v): %w", err, cause)
		return w.broken
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.broken = fmt.Errorf("wal: segment unusable (failed append could not be rolled back: %v): %w", err, cause)
		return w.broken
	}
	return cause
}

// maybeSync fsyncs per the configured policy. Called with the lock held
// and the new frame written but not yet counted.
func (w *Writer) maybeSync() error {
	switch w.opts.Sync {
	case SyncAlways:
	case SyncInterval:
		if time.Since(w.lastSync) < w.opts.Interval {
			return nil
		}
	case SyncNever:
		return nil
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.opts.Inject.Hit(faultinject.SiteWALFsync); err != nil {
		return err
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	obsv.MWALFsyncSeconds.Observe(time.Since(start).Seconds())
	w.lastSync = time.Now()
	return nil
}

// Sync forces an fsync regardless of policy — segment rotation and
// clean shutdown call it so even SyncNever logs are whole at rest.
func (w *Writer) Sync() error {
	w.lock()
	defer w.unlock()
	if w.broken != nil {
		return w.broken
	}
	return w.syncLocked()
}

// Close closes the segment file without syncing (call Sync first when
// the tail matters).
func (w *Writer) Close() error {
	w.lock()
	defer w.unlock()
	return w.f.Close()
}

// ReplayResult summarizes one segment scan.
type ReplayResult struct {
	// Records is how many intact records were replayed.
	Records int
	// LastSeq is the final record's sequence number (the startSeq passed
	// to Replay when the segment held no records).
	LastSeq uint64
	// GoodSize is the offset just past the last intact record — the
	// truncation point for a torn tail and the resume offset for OpenAt.
	GoodSize int64
	// TornBytes is how many trailing bytes a torn tail occupied (zero
	// for a cleanly closed segment).
	TornBytes int64
}

// Replay scans one segment stream, invoking fn for every intact record
// in order. startSeq is the sequence number the chain resumes from
// (the checkpoint seq, or the previous segment's LastSeq); every record
// must strictly advance it.
//
// When strictTail is false (the newest segment), a torn tail — short
// frame, short payload, or a bad-CRC record with nothing after it —
// ends the scan cleanly and is reported via TornBytes. When strictTail
// is true (an older segment, cleanly closed by rotation), any damage at
// all is a *WALCorruptError. An error from fn aborts the scan as-is.
func Replay(r io.Reader, startSeq uint64, strictTail bool, fn func(Record) error) (*ReplayResult, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	res := &ReplayResult{LastSeq: startSeq}

	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return res, &WALCorruptError{Offset: 0, Reason: "missing segment header"}
	}
	if string(head) != Magic {
		return res, &WALCorruptError{Offset: 0, Reason: fmt.Sprintf("bad magic %q", head)}
	}
	offset := int64(len(Magic))
	res.GoodSize = offset

	torn := func(n int64, reason string) (*ReplayResult, error) {
		if strictTail {
			return res, &WALCorruptError{Offset: offset, Reason: reason + " (before the live tail)"}
		}
		res.TornBytes = n
		return res, nil
	}

	frame := make([]byte, frameHeaderLen)
	for {
		n, err := io.ReadFull(br, frame)
		if err == io.EOF {
			return res, nil // clean end of segment
		}
		if err == io.ErrUnexpectedEOF {
			return torn(int64(n), "torn frame header")
		}
		if err != nil {
			return res, fmt.Errorf("wal: reading frame header: %w", err)
		}
		plen := binary.LittleEndian.Uint32(frame)
		want := binary.LittleEndian.Uint32(frame[4:])
		if plen == 0 || plen > maxRecordBytes {
			return res, &WALCorruptError{Offset: offset, Reason: fmt.Sprintf("implausible record length %d", plen)}
		}
		payload := make([]byte, plen)
		pn, err := io.ReadFull(br, payload)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return torn(frameHeaderLen+int64(pn), "torn record payload")
		}
		if err != nil {
			return res, fmt.Errorf("wal: reading record payload: %w", err)
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			// A bad CRC on the very last record is a torn write (the
			// frame landed, part of the payload did not, and the file
			// was later extended to the full length by a racing
			// preallocation or the tear is in the middle of the
			// payload). A bad CRC with more data after it is bit rot.
			if _, peekErr := br.Peek(1); peekErr == io.EOF && !strictTail {
				res.TornBytes = frameHeaderLen + int64(plen)
				return res, nil
			}
			return res, &WALCorruptError{Offset: offset, Reason: "record checksum mismatch", Want: want, Got: got}
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return res, &WALCorruptError{Offset: offset, Reason: fmt.Sprintf("undecodable record (crc valid): %v", err)}
		}
		if rec.Seq <= res.LastSeq {
			return res, &WALCorruptError{Offset: offset,
				Reason: fmt.Sprintf("sequence did not advance (%d after %d)", rec.Seq, res.LastSeq)}
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.Records++
		res.LastSeq = rec.Seq
		offset += frameHeaderLen + int64(plen)
		res.GoodSize = offset
	}
}

// ReplayFile is Replay over the segment at path, stamping the path into
// any corruption error.
func ReplayFile(path string, startSeq uint64, strictTail bool, fn func(Record) error) (*ReplayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	res, err := Replay(f, startSeq, strictTail, fn)
	var corrupt *WALCorruptError
	if errors.As(err, &corrupt) && corrupt.Path == "" {
		corrupt.Path = path
	}
	return res, err
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}
