package main

// The -verify mode: instead of timing experiments, run the differential
// oracle — every strategy against the semi-naive baseline — over a set
// of embedded programs covering the program classes of the paper
// (right-, left-, mixed-linear, multi-rule, mutual recursion, cyclic
// data). With -faults it becomes a command-line chaos probe: the given
// schedule is injected into every candidate run and the invariant
// checked is the weaker one — agree with the oracle or fail with a
// classified error.

import (
	"context"
	"fmt"
	"io"

	"lincount"
	"lincount/internal/oracle"
)

// verifyCase is one embedded program; cyclic cases exclude the
// acyclic-only counting rewritings, which legitimately diverge there.
type verifyCase struct {
	name   string
	text   string
	cyclic bool
}

func verifyCases() []verifyCase {
	return []verifyCase{
		{name: "same-generation", text: `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
up(a,b). up(b,c). flat(c,c1). flat(b,b1). down(c1,d1). down(b1,e1). down(d1,f1).
?- sg(a,Y).
`},
		{name: "ancestors", text: `
anc(X,Y) :- par(X,Y).
anc(X,Y) :- anc(X,Z), par(Z,Y).
par(a,b). par(b,c). par(c,d). par(d,e).
?- anc(a,Y).
`},
		{name: "mutual-recursion", text: `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).
up(a,b). over(b,c). flat(c,c2). flat(a,a2). under(c2,u). down(u,v).
?- p(a,Y).
`},
		{name: "multi-rule", text: `
r(X,Y) :- base1(X,Y).
r(X,Y) :- base2(X,Y).
r(X,Y) :- up(X,X1), r(X1,Y1), down(Y1,Y).
base1(m,m1). base2(m,m2). up(a,m). down(m1,w). down(m2,z).
?- r(a,Y).
`},
		{name: "cyclic-graph", cyclic: true, text: `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
up(a,b). up(b,a). flat(b,f). down(f,g).
?- sg(a,Y).
`},
	}
}

// runVerify executes the differential check and reports per-case
// results; it returns the process exit code.
func runVerify(ctx context.Context, stdout, stderr io.Writer, faults string, seed int64) int {
	bad := 0
	for _, c := range verifyCases() {
		p, err := lincount.ParseProgram(c.text)
		if err != nil {
			fmt.Fprintf(stderr, "lincount-bench: %s: %v\n", c.name, err)
			return 2
		}
		db := lincount.NewDatabase(p)
		var strategies []lincount.Strategy
		for _, s := range lincount.Strategies() {
			if c.cyclic && (s == lincount.CountingClassic || s == lincount.Counting || s == lincount.CountingReduced) {
				continue
			}
			strategies = append(strategies, s)
		}
		var runOpts []lincount.Option
		if faults != "" {
			runOpts = append(runOpts, lincount.WithFaultInjection(seed, faults))
		}
		rep, err := oracle.Check(ctx, p, db, p.Queries()[0], strategies, nil, runOpts)
		if err != nil {
			fmt.Fprintf(stderr, "lincount-bench: %s: %v\n", c.name, err)
			return 1
		}
		status := "PASS"
		if !rep.OK() {
			status = "FAIL"
			bad++
		}
		fmt.Fprintf(stdout, "%s %s\n%s", status, c.name, rep)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "lincount-bench: %d case(s) diverged from the oracle\n", bad)
		return 1
	}
	return 0
}
