// Command lincount-bench regenerates every experiment table recorded in
// EXPERIMENTS.md: the E-series reproduces the paper's worked examples, the
// P-series measures the performance claims (magic vs counting, counting-set
// sizes, cyclic data, reduction, multi-rule scaling, the pointer ablation,
// per-level phase work, tree/grid data and the selectivity sweep).
//
// Usage:
//
//	lincount-bench            # full suite
//	lincount-bench -only P1   # a single experiment
//	lincount-bench -quick     # smaller parameters for a fast smoke run
//	lincount-bench -csv       # machine-readable output
//	lincount-bench -json      # write BENCH_<date>.json next to the tables
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lincount/internal/bench"
	"lincount/internal/obsv"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// experiment pairs an id with its (lazy) full- and quick-parameter runs,
// so -only executes just the requested experiment.
type experiment struct {
	id    string
	full  func() bench.Table
	quick func() bench.Table
}

func suite() []experiment {
	return []experiment{
		{"E1", bench.E1SameGeneration, bench.E1SameGeneration},
		{"E2", bench.E2ArcClassification, bench.E2ArcClassification},
		{"E3", bench.E3MultiRule, bench.E3MultiRule},
		{"E4", bench.E4SharedVariables, bench.E4SharedVariables},
		{"E5", bench.E5Cyclic, bench.E5Cyclic},
		{"E6", bench.E6MixedLinear, bench.E6MixedLinear},
		{"P1",
			func() bench.Table { return bench.P1MagicVsCounting([]int{2, 4, 8, 16}, 16) },
			func() bench.Table { return bench.P1MagicVsCounting([]int{2, 4}, 8) }},
		{"P2",
			func() bench.Table { return bench.P2CountingSetSize([]int{16, 32, 64, 128}) },
			func() bench.Table { return bench.P2CountingSetSize([]int{16, 32}) }},
		{"P3",
			func() bench.Table { return bench.P3CyclicData([]int{32, 64, 128}, 8) },
			func() bench.Table { return bench.P3CyclicData([]int{16, 32}, 8) }},
		{"P4",
			func() bench.Table { return bench.P4Reduction(256) },
			func() bench.Table { return bench.P4Reduction(64) }},
		{"P5",
			func() bench.Table { return bench.P5MultiRule(64, []int{1, 2, 4, 8}) },
			func() bench.Table { return bench.P5MultiRule(32, []int{1, 2, 4}) }},
		{"P6",
			func() bench.Table { return bench.P6PointerAblation([]int{1000, 2000, 4000}) },
			func() bench.Table { return bench.P6PointerAblation([]int{1000, 4000}) }},
		{"P7",
			func() bench.Table { return bench.P7PhaseWork([]int{64, 256, 1024}) },
			func() bench.Table { return bench.P7PhaseWork([]int{64, 256}) }},
		{"P8",
			func() bench.Table { return bench.P8TreeData([]int{6, 8, 10}) },
			func() bench.Table { return bench.P8TreeData([]int{5, 7}) }},
		{"P9",
			func() bench.Table { return bench.P9Grid([]int{4, 8, 16}, 16) },
			func() bench.Table { return bench.P9Grid([]int{4, 8}, 8) }},
		{"P10",
			func() bench.Table { return bench.P10Selectivity(32, []int{0, 4, 16, 64}) },
			func() bench.Table { return bench.P10Selectivity(16, []int{0, 8}) }},
		{"P11",
			func() bench.Table { return bench.P11IntegerEncoding([]int{1, 2, 4, 8, 16}) },
			func() bench.Table { return bench.P11IntegerEncoding([]int{1, 4}) }},
		{"P12",
			func() bench.Table { return bench.P12QSQ([]int{16, 32, 64}) },
			func() bench.Table { return bench.P12QSQ([]int{16, 32}) }},
		{"P14",
			func() bench.Table { return bench.P14PreparedVsCold(200) },
			func() bench.Table { return bench.P14PreparedVsCold(50) }},
		{"P16",
			func() bench.Table { return bench.P16UpdateLatency([]int{20, 28}, 9) },
			func() bench.Table { return bench.P16UpdateLatency([]int{10}, 2) }},
		{"P17",
			func() bench.Table { return bench.P17BatchedJoin([]int{16, 24}, 5) },
			func() bench.Table { return bench.P17BatchedJoin([]int{10}, 2) }},
	}
}

// run executes the harness; factored out of main so tests can drive it.
// ctx (plus the optional -timeout) governs every measurement: a SIGINT or
// an expired deadline stops the in-flight cell and skips the rest of the
// suite instead of letting a slow experiment run to completion.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincount-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only    = fs.String("only", "", "run a single experiment by id (E1..E6, P1..P10)")
		quick   = fs.Bool("quick", false, "smaller parameters (fast smoke run)")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		timeout = fs.Duration("timeout", 0, "abort the whole suite after this long (e.g. 5m; 0 = no limit)")
		verify  = fs.Bool("verify", false, "run the cross-strategy differential oracle instead of the experiments")
		faults  = fs.String("faults", "", "with -verify: fault schedule to inject into candidate runs (see lincount.WithFaultInjection)")
		seed    = fs.Int64("seed", 1, "with -verify -faults: injection seed")
		jsonOut = fs.Bool("json", false, "also write the tables to BENCH_<date>.json (see -json-out)")
		jsonTo  = fs.String("json-out", "", "path for the JSON report (implies -json; default BENCH_<YYYYMMDD>.json)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memProf = fs.String("memprofile", "", "write a heap profile (taken after the suite) to this file")
		obsAddr = fs.String("obs", "", "serve /metrics and /debug/pprof/* on this address while the suite runs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *verify {
		return runVerify(ctx, stdout, stderr, *faults, *seed)
	}
	if *faults != "" {
		fmt.Fprintln(stderr, "lincount-bench: -faults requires -verify")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "lincount-bench:", err)
		return 1
	}
	if *obsAddr != "" {
		server, err := obsv.Serve(*obsAddr)
		if err != nil {
			return fail(err)
		}
		// Graceful: finish an in-flight /metrics scrape or pprof profile
		// before the process exits, instead of dropping the connection.
		defer server.ShutdownTimeout(2 * time.Second)
		fmt.Fprintf(stderr, "lincount-bench: observability on http://%s/\n", server.Addr)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, "lincount-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "lincount-bench:", err)
			}
		}()
	}
	bench.SetContext(ctx)
	defer bench.SetContext(nil)

	var collected []bench.Table
	failed := 0
	matched := false
	for _, e := range suite() {
		if *only != "" && !strings.EqualFold(e.id, *only) {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(stderr, "lincount-bench: interrupted; remaining experiments skipped")
			return 1
		}
		matched = true
		var t bench.Table
		if *quick {
			t = e.quick()
		} else {
			t = e.full()
		}
		if *csv {
			fmt.Fprint(stdout, t.CSV())
		} else {
			fmt.Fprintln(stdout, t.Format())
		}
		if *jsonOut || *jsonTo != "" {
			collected = append(collected, t)
		}
		for _, r := range t.Rows {
			// E-series rows are checks; a non-empty Err there is a
			// reproduction failure. P-series rows may legitimately
			// carry "diverges" markers.
			if strings.HasPrefix(t.ID, "E") && r.Err != "" {
				failed++
			}
		}
	}
	if *only != "" && !matched {
		fmt.Fprintf(stderr, "lincount-bench: no experiment with id %q\n", *only)
		return 2
	}
	if *jsonOut || *jsonTo != "" {
		now := time.Now()
		path := *jsonTo
		if path == "" {
			path = "BENCH_" + now.Format("20060102") + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			return fail(err)
		}
		if err := bench.WriteJSON(f, now.Format(time.RFC3339), *quick, collected); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "lincount-bench: wrote %s\n", path)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "lincount-bench: %d reproduction checks failed\n", failed)
		return 1
	}
	return 0
}
