package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestBenchSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-only", "E2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "== E2:") {
		t.Errorf("output:\n%s", text)
	}
	if strings.Contains(text, "== E1:") {
		t.Error("-only leaked other experiments")
	}
}

func TestBenchQuickSuiteCleanChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick suite")
	}
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, id := range []string{"E1", "E6", "P1", "P10", "P11", "P12"} {
		if !strings.Contains(out.String(), "== "+id+":") {
			t.Errorf("quick suite missing %s", id)
		}
	}
}

func TestBenchCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-only", "E2", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "experiment,workload,strategy") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-only", "P99"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestSuiteCoversEveryExperimentOnce(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range suite() {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
		if e.full == nil || e.quick == nil {
			t.Errorf("experiment %s lacks a variant", e.id)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6",
		"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11", "P12"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}
