// Command lincount-gen generates the synthetic workload databases of the
// experiment suite as Datalog fact text on stdout, so they can be fed to
// the lincount CLI or inspected directly.
//
// Usage:
//
//	lincount-gen -kind chain -n 100 > chain.dl
//	lincount-gen -kind cylinder -depth 16 -width 8 -fan 2
//	lincount-gen -kind cyclic -n 64 -period 8
//	lincount-gen -kind multirule -n 32 -k 4
//	lincount-gen -kind grid -binary > grid.lcdb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lincount"
	"lincount/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the generator; factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincount-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "chain", "workload kind: chain, cylinder, grid, tree, invtree, shortcut, cyclic, branchy, multirule, sharedvar, rightlinear, random")
		n       = fs.Int("n", 32, "size (chain length, node count)")
		depth   = fs.Int("depth", 8, "cylinder/tree depth")
		width   = fs.Int("width", 4, "cylinder width")
		fan     = fs.Int("fan", 2, "cylinder fan-out / tree fanout")
		period  = fs.Int("period", 4, "cycle period (cyclic)")
		k       = fs.Int("k", 2, "number of recursive rules (multirule)")
		answers = fs.Int("answers", 4, "answers at the chain top (rightlinear)")
		branch  = fs.Int("branches", 8, "irrelevant branches (branchy)")
		arcs    = fs.Int("arcs", 64, "arc count (random)")
		seed    = fs.Int("seed", 1, "seed (random)")
		cyclic  = fs.Bool("cyclic", false, "allow cycles (random)")
		program = fs.Bool("program", false, "also print the matching program before the facts")
		binOut  = fs.Bool("binary", false, "emit a binary snapshot (.lcdb) instead of fact text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var facts, prog string
	switch *kind {
	case "chain":
		facts, prog = workload.Chain(*n), workload.SGProgram
	case "cylinder":
		facts, prog = workload.Cylinder(*depth, *width, *fan), workload.SGProgram
	case "grid":
		facts, prog = workload.Grid(*depth, *width), workload.SGProgram
	case "tree":
		facts, prog = workload.Tree(*fan, *depth), workload.SGProgram
	case "invtree":
		facts, prog = workload.InvertedTree(*fan, *depth), workload.SGProgram
	case "shortcut":
		facts, prog = workload.ShortcutChain(*n), workload.SGProgram
	case "cyclic":
		facts, prog = workload.CyclicChain(*n, *period), workload.SGProgram
	case "branchy":
		facts, prog = workload.Branchy(*n, *branch), workload.SGProgram
	case "multirule":
		facts, prog = workload.MultiRule(*n, *k), workload.MultiRuleProgram(*k)
	case "sharedvar":
		facts, prog = workload.SharedVarChain(*n), workload.SGSharedVarProgram
	case "rightlinear":
		facts, prog = workload.RightLinearChain(*n, *answers), workload.RightLinearProgram
	case "random":
		facts, prog = workload.Random(*seed, *n, *arcs, *cyclic), workload.SGProgram
	default:
		fmt.Fprintf(stderr, "lincount-gen: unknown kind %q\n", *kind)
		return 2
	}
	if *binOut {
		p, err := lincount.ParseProgram(prog)
		if err != nil {
			fmt.Fprintln(stderr, "lincount-gen:", err)
			return 1
		}
		db := lincount.NewDatabase(p)
		if err := db.LoadFacts(facts); err != nil {
			fmt.Fprintln(stderr, "lincount-gen:", err)
			return 1
		}
		if err := db.Save(stdout); err != nil {
			fmt.Fprintln(stderr, "lincount-gen:", err)
			return 1
		}
		return 0
	}
	if *program {
		fmt.Fprint(stdout, prog)
	}
	fmt.Fprint(stdout, facts)
	return 0
}
