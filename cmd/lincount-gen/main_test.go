package main

import (
	"bytes"
	"strings"
	"testing"

	"lincount"
)

func gen(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	if code != 0 && errOut.Len() == 0 {
		t.Fatalf("exit %d with no error output", code)
	}
	return out.String(), code
}

func TestGenAllKindsProduceParsableFacts(t *testing.T) {
	kinds := [][]string{
		{"-kind", "chain", "-n", "5"},
		{"-kind", "cylinder", "-depth", "3", "-width", "2"},
		{"-kind", "grid", "-depth", "3", "-width", "2"},
		{"-kind", "tree", "-fan", "2", "-depth", "3"},
		{"-kind", "invtree", "-fan", "2", "-depth", "3"},
		{"-kind", "shortcut", "-n", "6"},
		{"-kind", "cyclic", "-n", "6", "-period", "3"},
		{"-kind", "branchy", "-n", "4", "-branches", "2"},
		{"-kind", "multirule", "-n", "6", "-k", "2"},
		{"-kind", "sharedvar", "-n", "4"},
		{"-kind", "rightlinear", "-n", "4", "-answers", "2"},
		{"-kind", "random", "-n", "8", "-arcs", "12", "-seed", "3"},
	}
	for _, args := range kinds {
		out, code := gen(t, args...)
		if code != 0 {
			t.Errorf("%v: exit %d", args, code)
			continue
		}
		p, err := lincount.ParseProgram(out)
		if err != nil {
			t.Errorf("%v: output does not parse: %v", args, err)
			continue
		}
		if len(p.Queries()) != 0 {
			t.Errorf("%v: fact output contains queries", args)
		}
	}
}

func TestGenWithProgramHeader(t *testing.T) {
	out, code := gen(t, "-kind", "chain", "-n", "3", "-program")
	if code != 0 {
		t.Fatal("exit nonzero")
	}
	if !strings.Contains(out, "sg(X,Y) :- flat(X,Y).") {
		t.Errorf("program header missing:\n%s", out)
	}
	if _, err := lincount.ParseProgram(out); err != nil {
		t.Errorf("combined output does not parse: %v", err)
	}
}

func TestGenBinarySnapshot(t *testing.T) {
	out, code := gen(t, "-kind", "chain", "-n", "4", "-binary")
	if code != 0 {
		t.Fatal("exit nonzero")
	}
	if !strings.HasPrefix(out, "LCDB2") {
		t.Errorf("snapshot magic missing: %q", out[:8])
	}
	p, err := lincount.ParseProgram("sg(X,Y) :- flat(X,Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadSnapshot(strings.NewReader(out)); err != nil {
		t.Fatalf("snapshot does not load: %v", err)
	}
	if db.FactCount() != 9 { // 4 up + 1 flat + 4 down
		t.Errorf("FactCount = %d", db.FactCount())
	}
}

func TestGenUnknownKind(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-kind", "bogus"}, &out, &errOut); code == 0 {
		t.Error("unknown kind accepted")
	}
}
