package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read CLI output while run() is still writing
// it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var obsAddrRE = regexp.MustCompile(`observability on http://([^/\s]+)/`)

// TestObsSmoke is the end-to-end observability check behind `make
// obs-smoke`: run a query with -obs on an ephemeral port, fetch /metrics
// and /trace.json, and validate the trace parses as Chrome trace-event
// JSON with the expected span names.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d).")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, errOut := &syncBuffer{}, &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-program", prog, "-facts", facts,
			"-obs", "127.0.0.1:0", "-obs-linger",
		}, out, errOut)
	}()

	// The linger banner prints after the queries ran and the trace was
	// published, so once it appears every endpoint is ready.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(errOut.String(), "serving until interrupted") {
		if time.Now().After(deadline) {
			t.Fatalf("server never lingered; stderr:\n%s", errOut.String())
		}
		select {
		case code := <-done:
			t.Fatalf("run exited early with %d; stderr:\n%s", code, errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	m := obsAddrRE.FindStringSubmatch(errOut.String())
	if m == nil {
		t.Fatalf("no observability banner in stderr:\n%s", errOut.String())
	}
	base := "http://" + m[1]

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, w := range []string{
		"# TYPE lincount_evaluations_total counter",
		"lincount_evaluations_total{strategy=",
		"# TYPE lincount_inferences_total counter",
		"# TYPE lincount_eval_duration_seconds histogram",
		"lincount_eval_duration_seconds_bucket{le=",
	} {
		if !strings.Contains(metrics, w) {
			t.Errorf("/metrics missing %q\n%s", w, metrics)
		}
	}

	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	raw := get("/trace.json")
	if err := json.Unmarshal([]byte(raw), &trace); err != nil {
		t.Fatalf("/trace.json does not parse: %v\n%s", err, raw)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("/trace.json has no events")
	}
	names := make(map[string]bool)
	for _, e := range trace.TraceEvents {
		names[e.Name] = true
	}
	for _, w := range []string{"eval", "parse"} {
		if !names[w] {
			t.Errorf("trace missing span %q; have %v", w, names)
		}
	}

	if !strings.Contains(out.String(), "a, d") {
		t.Errorf("query answer missing from stdout:\n%s", out.String())
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit %d; stderr:\n%s", code, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}
