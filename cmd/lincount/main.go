// Command lincount evaluates a bound-argument query over a Datalog program
// and a fact database with a selectable optimization strategy.
//
// Usage:
//
//	lincount -program sg.dl -facts data.dl -query '?- sg(a,Y).' [-strategy auto] [-stats]
//
// When -query is omitted, the queries embedded in the program file ("?-"
// lines) are evaluated in order. Fact files ending in .lcdb are read as
// binary snapshots. The strategy names are those of lincount.Strategy:
// auto, naive, semi-naive, magic, magic-sup, magic-counting,
// counting-classic, counting, counting-reduced, counting-runtime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"lincount"
	"lincount/internal/obsv"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main so tests can drive it. ctx
// carries the SIGINT interrupt: a Ctrl-C cancels the running evaluation,
// which drains and reports "interrupted" instead of killing the process
// mid-write.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincount", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programPath = fs.String("program", "", "path to the Datalog program (required)")
		factsPath   = fs.String("facts", "", "comma-separated fact files (.dl text or .lcdb snapshots)")
		query       = fs.String("query", "", "query to evaluate, e.g. '?- sg(a,Y).'")
		strategy    = fs.String("strategy", "auto", "evaluation strategy")
		timeout     = fs.Duration("timeout", 0, "abort evaluation after this long (e.g. 30s; 0 = no limit)")
		stats       = fs.Bool("stats", false, "print evaluation statistics")
		showRewrite = fs.Bool("rewrite", false, "print the rewritten program before the answers")
		why         = fs.Bool("why", false, "print a derivation witness for every answer (linear programs only)")
		trace       = fs.Bool("trace", false, "print per-component and per-iteration fixpoint events")
		lintOnly    = fs.Bool("lint", false, "run static diagnostics over the program and exit")
		cset        = fs.Bool("cset", false, "print the counting set (paper notation) instead of evaluating")
		obsAddr     = fs.String("obs", "", "serve /metrics, /debug/pprof/* and /trace.json on this address (e.g. 127.0.0.1:9464)")
		obsLinger   = fs.Bool("obs-linger", false, "with -obs: keep serving after the queries finish, until interrupted")
		traceJSON   = fs.String("trace-json", "", "write the evaluation trace (Chrome trace-event JSON) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "lincount:", err)
		return 1
	}

	var server *obsv.Server
	if *obsAddr != "" {
		var err error
		server, err = obsv.Serve(*obsAddr)
		if err != nil {
			return fail(err)
		}
		// Graceful: finish an in-flight /metrics scrape or pprof profile
		// before the process exits, instead of dropping the connection.
		defer server.ShutdownTimeout(2 * time.Second)
		fmt.Fprintf(stderr, "lincount: observability on http://%s/\n", server.Addr)
	}
	var tracer *lincount.Tracer
	if *obsAddr != "" || *traceJSON != "" {
		tracer = lincount.NewTracer()
	}

	if *programPath == "" {
		fmt.Fprintln(stderr, "lincount: -program is required")
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return fail(err)
	}
	p, err := lincount.ParseProgram(string(src))
	if err != nil {
		return fail(fmt.Errorf("parsing %s: %w", *programPath, err))
	}
	if *lintOnly {
		findings, hasErrors := p.Lint()
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if hasErrors {
			return 1
		}
		return 0
	}
	db := lincount.NewDatabase(p)
	if *factsPath != "" {
		for _, path := range strings.Split(*factsPath, ",") {
			if strings.HasSuffix(path, ".lcdb") {
				f, err := os.Open(path)
				if err != nil {
					return fail(err)
				}
				err = db.LoadSnapshot(f)
				f.Close()
				if err != nil {
					return fail(fmt.Errorf("loading snapshot %s: %w", path, err))
				}
				continue
			}
			facts, err := os.ReadFile(path)
			if err != nil {
				return fail(err)
			}
			if err := db.LoadFacts(string(facts)); err != nil {
				return fail(fmt.Errorf("loading %s: %w", path, err))
			}
		}
	}
	s, err := lincount.ParseStrategy(*strategy)
	if err != nil {
		return fail(err)
	}

	queries := p.Queries()
	if *query != "" {
		queries = []string{*query}
	}
	if len(queries) == 0 {
		return fail(fmt.Errorf("no query: pass -query or embed '?- goal.' in the program"))
	}

	for _, q := range queries {
		if *cset {
			out, err := lincount.CountingSet(p, db, q)
			if err != nil {
				return fail(fmt.Errorf("counting set for %s: %w", q, err))
			}
			fmt.Fprintf(stdout, "%% %s\n%s", q, out)
			continue
		}
		if *why {
			exps, err := lincount.Explain(p, db, q)
			if err != nil {
				return fail(fmt.Errorf("explaining %s: %w", q, err))
			}
			fmt.Fprintf(stdout, "%% %s  [counting-runtime with provenance]\n", q)
			for _, e := range exps {
				fmt.Fprintln(stdout, strings.Join(e.Answer, ", "))
				for _, line := range strings.Split(strings.TrimRight(e.Witness, "\n"), "\n") {
					fmt.Fprintf(stdout, "    %s\n", line)
				}
			}
			continue
		}
		var opts []lincount.Option
		if *trace {
			opts = append(opts, lincount.WithTrace(func(e lincount.TraceEvent) {
				switch e.Kind {
				case "component":
					fmt.Fprintf(stdout, "%% stratum: %s\n", strings.Join(e.Preds, ", "))
				default:
					fmt.Fprintf(stdout, "%%   iter %-3d delta=%-6d total=%d\n",
						e.Iteration, e.DeltaFacts, e.TotalFacts)
				}
			}))
		}
		if *timeout > 0 {
			opts = append(opts, lincount.WithMaxDuration(*timeout))
		}
		if tracer != nil {
			opts = append(opts, lincount.WithTracer(tracer))
		}
		// Queries go through the prepared-query facade: repeated goals in
		// one input (common in generated query files) compile once and hit
		// the program's plan cache afterwards.
		pq, err := lincount.Prepare(p, q, s, opts...)
		if err != nil {
			return fail(fmt.Errorf("compiling %s: %w", q, err))
		}
		res, err := pq.EvalContext(ctx, db)
		if err != nil {
			switch {
			case errors.Is(err, context.Canceled):
				fmt.Fprintf(stderr, "lincount: %s: interrupted\n", q)
			case errors.Is(err, context.DeadlineExceeded):
				fmt.Fprintf(stderr, "lincount: %s: timed out after %s\n", q, *timeout)
			default:
				return fail(fmt.Errorf("evaluating %s: %w", q, err))
			}
			return 1
		}
		fmt.Fprintf(stdout, "%% %s  [%s]\n", q, res.Strategy)
		for i, a := range res.Degraded {
			fmt.Fprintf(stdout, "%% degraded: attempt %d (%s) failed: %s\n", i+1, a.Strategy, a.Err)
			fmt.Fprintf(stdout, "%%   attempt work: inferences=%d facts=%d probes=%d counting-set=%d in %s\n",
				a.Stats.Inferences, a.Stats.DerivedFacts, a.Stats.Probes,
				a.Stats.CountingNodes, a.Duration.Round(time.Microsecond))
		}
		if *showRewrite && res.Rewritten != "" {
			fmt.Fprintln(stdout, "% rewritten program:")
			for _, line := range strings.Split(strings.TrimSpace(res.Rewritten), "\n") {
				fmt.Fprintf(stdout, "%%   %s\n", line)
			}
			fmt.Fprintf(stdout, "%%   goal: %s\n", res.RewrittenQuery)
		}
		for _, row := range res.Answers {
			fmt.Fprintln(stdout, strings.Join(row, ", "))
		}
		if *stats {
			st := res.Stats
			fmt.Fprintf(stdout, "%% answers=%d inferences=%d facts=%d counting-set=%d answer-tuples=%d iterations=%d probes=%d arena-values=%d\n",
				len(res.Answers), st.Inferences, st.DerivedFacts,
				st.CountingNodes, st.AnswerTuples, st.Iterations, st.Probes,
				st.ArenaValues)
		}
	}
	if tracer != nil {
		obsv.SetLastTrace(tracer)
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				return fail(err)
			}
			if err := tracer.WriteChromeJSON(f); err != nil {
				f.Close()
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
		}
	}
	if server != nil && *obsLinger {
		fmt.Fprintln(stderr, "lincount: serving until interrupted (Ctrl-C)")
		<-ctx.Done()
	}
	return 0
}
