package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(context.Background(), args, &out, &errOut)
	return out.String(), errOut.String(), code
}

const sgText = `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
?- sg(a,Y).
`

func TestCLIBasicQuery(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d).")
	out, errOut, code := runCLI(t, "-program", prog, "-facts", facts, "-stats")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "a, d") || !strings.Contains(out, "answers=1") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCLIExplicitStrategyAndRewrite(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d).")
	out, _, code := runCLI(t, "-program", prog, "-facts", facts,
		"-strategy", "counting", "-rewrite")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "[counting]") || !strings.Contains(out, "c_sg_bf(a,[]).") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCLIQueryFlagOverridesEmbedded(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d). flat(a,z).")
	out, _, code := runCLI(t, "-program", prog, "-facts", facts, "-query", "?- sg(b,Y).")
	if code != 0 {
		t.Fatal("exit nonzero")
	}
	if !strings.Contains(out, "b, c") || strings.Contains(out, "a, d") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCLIWhy(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d).")
	out, _, code := runCLI(t, "-program", prog, "-facts", facts, "-why")
	if code != 0 {
		t.Fatal("exit nonzero")
	}
	if !strings.Contains(out, "exit") || !strings.Contains(out, "undo") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCLITrace(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d).")
	out, _, code := runCLI(t, "-program", prog, "-facts", facts,
		"-strategy", "magic", "-trace")
	if code != 0 {
		t.Fatal("exit nonzero")
	}
	if !strings.Contains(out, "% stratum:") || !strings.Contains(out, "iter") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCLILint(t *testing.T) {
	dir := t.TempDir()
	bad := writeFile(t, dir, "bad.dl", "p(X,Y) :- q(X).\n")
	out, _, code := runCLI(t, "-program", bad, "-lint")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "head variable Y") {
		t.Errorf("output:\n%s", out)
	}
	good := writeFile(t, dir, "good.dl", sgText)
	_, _, code = runCLI(t, "-program", good, "-lint")
	if code != 0 {
		t.Errorf("clean program lint exit = %d", code)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	cases := [][]string{
		{},                                    // missing -program
		{"-program", "/does/not/exist.dl"},    // unreadable
		{"-program", prog, "-strategy", "??"}, // bad strategy
		{"-program", prog, "-facts", "/does/not/exist.dl"},
	}
	for _, args := range cases {
		if _, _, code := runCLI(t, args...); code == 0 {
			t.Errorf("args %v: expected failure", args)
		}
	}
	noQuery := writeFile(t, dir, "nq.dl", "p(a).\n")
	if _, _, code := runCLI(t, "-program", noQuery); code == 0 {
		t.Error("missing query accepted")
	}
}

func TestCLISnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d).")

	// Build a snapshot via the library, then read it back through the CLI.
	out1, _, code := runCLI(t, "-program", prog, "-facts", facts)
	if code != 0 {
		t.Fatal("text run failed")
	}
	snapPath := filepath.Join(dir, "facts.lcdb")
	makeSnapshot(t, facts, snapPath)
	out2, errOut, code := runCLI(t, "-program", prog, "-facts", snapPath)
	if code != 0 {
		t.Fatalf("snapshot run failed: %s", errOut)
	}
	if out1 != out2 {
		t.Errorf("snapshot run differs:\n%s\nvs\n%s", out1, out2)
	}
}

func makeSnapshot(t *testing.T, factsPath, outPath string) {
	t.Helper()
	data, err := os.ReadFile(factsPath)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProgram(t)
	db := newDatabase(t, p, string(data))
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
}
