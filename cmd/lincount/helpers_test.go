package main

import (
	"testing"

	"lincount"
)

func mustProgram(t *testing.T) *lincount.Program {
	t.Helper()
	p, err := lincount.ParseProgram(sgText)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newDatabase(t *testing.T, p *lincount.Program, facts string) *lincount.Database {
	t.Helper()
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(facts); err != nil {
		t.Fatal(err)
	}
	return db
}
