package main

// TestCrashSmoke is the end-to-end durability check behind `make
// crash-smoke`: build the real lincountd binary, run it with a data
// directory, load it with concurrent writers, checkpoint mid-stream,
// SIGKILL it mid-load, restart over the same directory, and demand that
// every acknowledged write survived. A write the server acked but the
// recovered database lacks is the one unforgivable durability bug.
//
// The surviving set may be a superset of the acknowledged set: a write
// in flight at the kill can have reached the log without its ack
// reaching the client. That is the documented at-most-once-from-the-
// caller's-view window, so the assertion is acked ⊆ recovered, not
// equality (the in-process chaos test gets exact equality by copying
// the directory only when no write is in flight).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches bin with args, scrapes the serving banner off
// stderr, and returns the process, its base URL, and the stderr buffer.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *syncBuffer) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	errOut := &syncBuffer{}
	cmd.Stderr = errOut
	cmd.Stdout = errOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := bannerRE.FindStringSubmatch(errOut.String()); m != nil {
			return cmd, "http://" + m[1], errOut
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no serving banner; output:\n%s", errOut.String())
		}
		if cmd.ProcessState != nil {
			t.Fatalf("daemon exited early; output:\n%s", errOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short mode")
	}
	work := t.TempDir()
	bin := filepath.Join(work, "lincountd")
	build := exec.Command("go", "build", "-o", bin, "lincount/cmd/lincountd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lincountd: %v\n%s", err, out)
	}
	prog := writeFile(t, work, "p.dl", "p(X,Y) :- f(X,Y).\n")
	dataDir := filepath.Join(work, "data")

	cmd, base, errOut := startDaemon(t, bin,
		"-program", prog, "-addr", "127.0.0.1:0", "-data-dir", dataDir)
	defer cmd.Process.Kill()

	// Concurrent writers stream uniquely named facts; everything the
	// server acks with a 200 goes into the acked set.
	var mu sync.Mutex
	acked := make(map[string]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fact := fmt.Sprintf("f(w%d_%d, ok).", w, i)
				resp, err := client.Post(base+"/v1/write", "application/json",
					strings.NewReader(fmt.Sprintf(`{"assert":%q}`, fact)))
				if err != nil {
					return // the kill landed mid-request
				}
				code := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if code == http.StatusOK {
					mu.Lock()
					acked[fact] = true
					mu.Unlock()
				}
			}
		}(w)
	}

	// Let writes accumulate, checkpoint while they keep flowing (the
	// manifest path must work under live traffic), let more accumulate,
	// then SIGKILL with writers still in flight.
	waitForAcked := func(n int) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			mu.Lock()
			got := len(acked)
			mu.Unlock()
			if got >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d acked writes after 20s; output:\n%s", got, errOut.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitForAcked(25)
	resp, err := client.Post(base+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	ckBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, ckBody)
	}
	waitForAcked(60)

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync courtesy
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	_ = cmd.Wait()

	mu.Lock()
	ackedFacts := make([]string, 0, len(acked))
	for f := range acked {
		ackedFacts = append(ackedFacts, f)
	}
	mu.Unlock()

	// Restart over the same directory: recovery must resurrect every
	// acknowledged fact.
	cmd2, base2, errOut2 := startDaemon(t, bin,
		"-program", prog, "-addr", "127.0.0.1:0", "-data-dir", dataDir)
	defer cmd2.Process.Kill()
	if !strings.Contains(errOut2.String(), "recovered") {
		t.Errorf("no recovery banner after crash restart; output:\n%s", errOut2.String())
	}

	resp, err = client.Post(base2+"/v1/query", "application/json",
		strings.NewReader(`{"query":"?- p(X,Y)."}`))
	if err != nil {
		t.Fatal(err)
	}
	qb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recovery: %d %s", resp.StatusCode, qb)
	}
	var qres struct {
		Answers [][]string `json:"answers"`
		Epoch   uint64     `json:"epoch"`
	}
	if err := json.Unmarshal(qb, &qres); err != nil {
		t.Fatal(err)
	}
	recovered := make(map[string]bool, len(qres.Answers))
	for _, ans := range qres.Answers {
		if len(ans) == 2 {
			recovered[fmt.Sprintf("f(%s, %s).", ans[0], ans[1])] = true
		}
	}
	missing := 0
	for _, f := range ackedFacts {
		if !recovered[f] {
			missing++
			if missing <= 5 {
				t.Errorf("acknowledged write lost in crash: %s", f)
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acknowledged writes missing after recovery (epoch %d, %d answers)",
			missing, len(ackedFacts), qres.Epoch, len(qres.Answers))
	}
	if len(recovered) < len(ackedFacts) {
		t.Fatalf("recovered %d facts < %d acked", len(recovered), len(ackedFacts))
	}

	// The recovered daemon shuts down cleanly over the same directory.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd2.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("recovered daemon exited uncleanly: %v\n%s", err, errOut2.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("recovered daemon did not exit on SIGTERM; output:\n%s", errOut2.String())
	}
	if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST")); err != nil {
		t.Errorf("no manifest in data dir after checkpoint: %v", err)
	}
}
