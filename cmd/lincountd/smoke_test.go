package main

// TestServerSmoke is the end-to-end daemon check behind `make
// server-smoke`: start lincountd in-process on an ephemeral port, query
// it, write a fact and observe read-your-writes, provoke a deterministic
// shed under admission pressure, then deliver the shutdown signal during
// load and assert a clean drain and exit 0.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var bannerRE = regexp.MustCompile(`serving .* on http://([^/\s]+)/`)

const sgText = `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).
`

func TestServerSmoke(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", sgText)
	facts := writeFile(t, dir, "facts.dl", "up(a,b). flat(b,c). down(c,d).")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, errOut := &syncBuffer{}, &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-program", prog, "-facts", facts,
			"-addr", "127.0.0.1:0",
			// One slot, one queue seat: with an injected delay on every
			// evaluator hook site, a burst of requests sheds
			// deterministically.
			"-max-concurrent", "1", "-max-queue", "1",
			"-eval-faults", "*=delay~1:50ms",
			"-drain-timeout", "10s",
		}, out, errOut)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if m := bannerRE.FindStringSubmatch(errOut.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no serving banner; stderr:\n%s", errOut.String())
		}
		select {
		case code := <-done:
			t.Fatalf("run exited early with %d; stderr:\n%s", code, errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	// Query: the seed chain answers sg(a,d).
	code, body := post("/v1/query", `{"query":"?- sg(a,Y)."}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	var qres struct {
		Answers [][]string `json:"answers"`
		Epoch   uint64     `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(body), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Answers) != 1 || qres.Answers[0][len(qres.Answers[0])-1] != "d" {
		t.Fatalf("answers = %v, want [... d]", qres.Answers)
	}

	// Write a new flat arc, then read our write: sg(a,Y) gains an answer.
	code, body = post("/v1/write", `{"assert":"flat(b,z). down(z,w)."}`)
	if code != http.StatusOK {
		t.Fatalf("write: %d %s", code, body)
	}
	code, body = post("/v1/query", `{"query":"?- sg(a,Y)."}`)
	if code != http.StatusOK {
		t.Fatalf("query after write: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Answers) != 2 || qres.Epoch != 1 {
		t.Fatalf("after write: %d answers at epoch %d, want 2 at 1\n%s",
			len(qres.Answers), qres.Epoch, body)
	}

	// Shed probe: every evaluation sleeps ≥50ms per fixpoint round, one
	// slot, one queue seat — four concurrent queries must shed at least
	// one with a 503/busy and eventually answer the admitted ones. The
	// probe pins an explicit strategy: auto reads are served from the
	// maintained materialisation without evaluating (no injected delay),
	// and the admission pressure this probe needs comes from evaluation.
	var wg sync.WaitGroup
	codes := make([]int, 4)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post("/v1/query", `{"query":"?- sg(a,Y).","strategy":"semi-naive"}`)
		}(i)
	}
	wg.Wait()
	shed, ok := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusServiceUnavailable:
			shed++
		case http.StatusOK:
			ok++
		}
	}
	if shed == 0 || ok == 0 {
		t.Fatalf("shed probe: codes = %v, want ≥1 shed and ≥1 success", codes)
	}

	// Metrics ride the same listener.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, w := range []string{
		"lincount_server_requests_total",
		"lincount_server_shed_total",
		"lincount_server_epoch",
	} {
		if !strings.Contains(string(mb), w) {
			t.Errorf("/metrics missing %q", w)
		}
	}

	// Shutdown under load: launch a slow query, deliver the signal while
	// it runs, and demand a clean drain (exit 0) with the straggler
	// finished rather than dropped.
	slow := make(chan int, 1)
	go func() {
		c, _ := post("/v1/query", `{"query":"?- sg(a,Y).","strategy":"semi-naive"}`)
		slow <- c
	}()
	time.Sleep(20 * time.Millisecond) // let it reach the server
	cancel()

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr:\n%s", code, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after signal; stderr:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "drained cleanly") {
		t.Errorf("no clean-drain banner; stderr:\n%s", errOut.String())
	}
	select {
	case c := <-slow:
		// The in-flight query must have completed (200) or, if it was
		// still queued behind the shed burst, been refused crisply — it
		// must not hang or see a torn connection.
		if c != http.StatusOK && c != http.StatusServiceUnavailable && c != http.StatusGatewayTimeout {
			t.Errorf("straggler status = %d", c)
		}
	case <-time.After(5 * time.Second):
		t.Error("straggler request never returned")
	}
}
