// Command lincountd is the resident query server: it loads a Datalog
// program and a fact database once, then serves queries and fact writes
// over HTTP/JSON until told to stop.
//
// Usage:
//
//	lincountd -program sg.dl -facts data.dl -addr 127.0.0.1:7090
//
// Endpoints (all on the one listener):
//
//	POST   /v1/query         {"query":"?- sg(a,Y)."}            evaluate
//	POST   /v1/write         {"assert":"up(a,b).","retract":""}  mutate (atomic)
//	GET    /v1/stats         lifecycle state, epoch, admission gauges
//	GET    /v1/queries       in-flight queries  DELETE /v1/queries/{id}  cancel one
//	GET    /v1/debug/slowlog slow-query log (see -slow-query)
//	GET    /healthz          liveness          GET /readyz   readiness
//	GET    /metrics          Prometheus text   /debug/pprof/ profiler
//
// Every request gets an X-Request-Id (the inbound one is honoured when
// sane), echoed on responses and error bodies and stamped on the
// server's structured log lines (-log-format, -log-level). Requests
// slower than -slow-query land in the slow-query log with their planner
// ranking and per-rule profiles.
//
// Reads run against immutable snapshots (MVCC); writes batch through a
// single writer that publishes a new epoch atomically, so a query never
// observes a half-applied write. SIGTERM/SIGINT triggers a graceful
// drain: readiness flips, in-flight requests finish (or are canceled at
// -drain-timeout), and the process exits 0 on a clean drain.
//
// With -data-dir the server is durable: every write batch is appended
// to a write-ahead log (fsynced per -fsync) before it becomes visible,
// checkpoints (POST /v1/checkpoint, SIGUSR1, or the -checkpoint-*
// thresholds) bound replay time, and a restart over the same directory
// recovers every acknowledged write — including after SIGKILL. When a
// checkpoint exists, -facts is skipped (the checkpoint already contains
// that data; reloading it would resurrect retracted facts).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lincount"
	"lincount/internal/faultinject"
	"lincount/internal/obsv"
	"lincount/internal/server"
	"lincount/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon; factored out of main so tests can drive it
// in-process. ctx carries the shutdown signal: when it fires, the server
// drains gracefully and run returns.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincountd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programPath  = fs.String("program", "", "path to the Datalog program (required)")
		factsPath    = fs.String("facts", "", "comma-separated fact files (.dl text or .lcdb snapshots)")
		addr         = fs.String("addr", "127.0.0.1:7090", "listen address (use :0 for an ephemeral port)")
		maxConc      = fs.Int("max-concurrent", 16, "max concurrently evaluating requests")
		maxQueue     = fs.Int("max-queue", 64, "max requests waiting for a slot before shedding")
		timeout      = fs.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout   = fs.Duration("max-timeout", 60*time.Second, "upper bound on requested deadlines")
		maxFacts     = fs.Int("max-facts", 10_000_000, "per-request derived-fact budget (-1 = unlimited)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests at shutdown")
		faultSpec    = fs.String("faults", "", "fault-injection schedule for the write path, e.g. 'server.publish=err@3' (chaos testing)")
		faultSeed    = fs.Int64("fault-seed", 1, "seed for probabilistic fault-injection rules")
		evalFaults   = fs.String("eval-faults", "", "fault-injection schedule applied to every evaluation (chaos testing)")
		dataDir      = fs.String("data-dir", "", "directory for the write-ahead log and checkpoints (empty = in-memory only)")
		fsyncPolicy  = fs.String("fsync", "always", "WAL fsync policy: always, interval, never")
		fsyncEvery   = fs.Duration("fsync-interval", 50*time.Millisecond, "max fsync lag under -fsync=interval")
		ckptBytes    = fs.Int64("checkpoint-bytes", 8<<20, "checkpoint when the live WAL segment exceeds this size (-1 disables)")
		ckptRecords  = fs.Int("checkpoint-records", 4096, "checkpoint when the live WAL segment exceeds this many records (-1 disables)")
		logFormat    = fs.String("log-format", "json", "structured-log format: json or text")
		logLevel     = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		slowQuery    = fs.Duration("slow-query", 250*time.Millisecond, "capture queries slower than this in the slow-query log (0 disables)")
		joinWorkers  = fs.Int("join-workers", 0, "partition wide rule runs across this many workers (0 or 1 = serial; results are byte-identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "lincountd:", err)
		return 1
	}

	if *programPath == "" {
		fmt.Fprintln(stderr, "lincountd: -program is required")
		fs.Usage()
		return 2
	}
	if *logFormat != "json" && *logFormat != "text" {
		return fail(fmt.Errorf("-log-format: unknown format %q (want json or text)", *logFormat))
	}
	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		return fail(fmt.Errorf("-log-level: %w", err))
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return fail(err)
	}
	p, err := lincount.ParseProgram(string(src))
	if err != nil {
		return fail(fmt.Errorf("parsing %s: %w", *programPath, err))
	}
	db := lincount.NewDatabase(p)
	if *factsPath != "" && *dataDir != "" {
		// A checkpointed data directory already contains the fact state
		// (including the effects of later retractions); loading -facts on
		// top would resurrect retracted facts.
		if m, err := wal.ReadManifest(*dataDir); err != nil {
			return fail(err)
		} else if m != nil {
			fmt.Fprintf(stderr, "lincountd: warning: ignoring -facts %s: %s has a checkpoint (epoch %d) that supersedes it\n",
				*factsPath, *dataDir, m.Seq)
			*factsPath = ""
		}
	}
	if *factsPath != "" {
		for _, path := range strings.Split(*factsPath, ",") {
			if strings.HasSuffix(path, ".lcdb") {
				f, err := os.Open(path)
				if err != nil {
					return fail(err)
				}
				err = db.LoadSnapshot(f)
				f.Close()
				if err != nil {
					return fail(fmt.Errorf("loading snapshot %s: %w", path, err))
				}
				continue
			}
			facts, err := os.ReadFile(path)
			if err != nil {
				return fail(err)
			}
			if err := db.LoadFacts(string(facts)); err != nil {
				return fail(fmt.Errorf("loading %s: %w", path, err))
			}
		}
	}

	cfg := server.Config{
		Program:        p,
		DB:             db,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxDerivedFacts: func() int {
			if *maxFacts < 0 {
				return -1
			}
			return *maxFacts
		}(),
		SlowQuery: *slowQuery,
		Log:       obsv.NewLogger(stderr, *logFormat, level),
	}
	if *dataDir != "" {
		sync, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			return fail(fmt.Errorf("-fsync: %w", err))
		}
		cfg.DataDir = *dataDir
		cfg.WALSync = sync
		cfg.WALSyncInterval = *fsyncEvery
		cfg.CheckpointBytes = *ckptBytes
		cfg.CheckpointRecords = *ckptRecords
	}
	if *faultSpec != "" {
		inj, err := faultinject.ParseSpec(*faultSeed, *faultSpec)
		if err != nil {
			return fail(fmt.Errorf("-faults: %w", err))
		}
		cfg.Inject = inj
	}
	if *evalFaults != "" {
		cfg.EvalOptions = append(cfg.EvalOptions,
			lincount.WithFaultInjection(*faultSeed, *evalFaults))
	}
	if *joinWorkers > 1 {
		cfg.EvalOptions = append(cfg.EvalOptions,
			lincount.WithJoinWorkers(*joinWorkers))
	}

	s, err := server.New(cfg)
	if err != nil {
		return fail(err)
	}
	if s.Durable() {
		info := s.Recovery()
		if info.Records > 0 || info.CheckpointSeq > 0 {
			fmt.Fprintf(stderr, "lincountd: recovered %s: checkpoint epoch %d + %d replayed records -> epoch %d\n",
				*dataDir, info.CheckpointSeq, info.Records, info.Epoch)
		}
		if info.TruncatedBytes > 0 {
			fmt.Fprintf(stderr, "lincountd: dropped a %d-byte torn tail (unacknowledged crash residue)\n",
				info.TruncatedBytes)
		}
		// SIGUSR1 triggers a checkpoint, the classic operational lever for
		// "compact now, before I snapshot the disk".
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		defer signal.Stop(usr1)
		go func() {
			for {
				select {
				case <-usr1:
					if res, err := s.Checkpoint(context.Background()); err != nil {
						fmt.Fprintln(stderr, "lincountd: checkpoint:", err)
					} else if res.Skipped {
						fmt.Fprintf(stderr, "lincountd: checkpoint skipped (epoch %d already checkpointed)\n", res.Epoch)
					} else {
						fmt.Fprintf(stderr, "lincountd: checkpointed epoch %d -> %s\n", res.Epoch, res.Snapshot)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = s.Close()
		return fail(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	// The banner goes to stderr so scripts can scrape the bound address
	// (":0" resolves here) the same way the -obs CLIs announce theirs.
	fmt.Fprintf(stderr, "lincountd: serving %s (%d facts) on http://%s/\n",
		*programPath, db.FactCount(), l.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		_ = s.Close()
		return fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(stderr, "lincountd: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	_ = srv.Shutdown(dctx)
	<-errc // Serve returns ErrServerClosed once Shutdown completes
	if drainErr != nil {
		fmt.Fprintln(stderr, "lincountd:", drainErr)
		return 1
	}
	fmt.Fprintln(stderr, "lincountd: drained cleanly")
	return 0
}
