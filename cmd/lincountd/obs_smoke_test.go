package main

// TestObsServerSmoke is the end-to-end observability check behind `make
// obs-smoke`: start lincountd in-process with a tiny slow-query threshold
// and an injected evaluation delay, then walk the whole per-request
// observability surface — request-ID echo on success and error bodies,
// the slow-query log with its planner ranking and per-rule profiles, the
// structured JSON log line for the same request, and live introspection
// plus cancellation via GET/DELETE /v1/queries.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lincount/internal/workload"
)

func TestObsServerSmoke(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sg.dl", workload.SGProgram)
	facts := writeFile(t, dir, "facts.dl", workload.Chain(150))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, errOut := &syncBuffer{}, &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-program", prog, "-facts", facts,
			"-addr", "127.0.0.1:0",
			// Every request is "slow", and every evaluation crawls: the
			// injected per-round delay keeps a semi-naive query alive long
			// enough to observe in /v1/queries and kill.
			"-slow-query", "1ms",
			"-log-format", "json", "-log-level", "info",
			"-eval-faults", "engine.iter=delay~1:10ms",
			"-max-timeout", "120s",
			"-drain-timeout", "10s",
		}, out, errOut)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if m := bannerRE.FindStringSubmatch(errOut.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no serving banner; stderr:\n%s", errOut.String())
		}
		select {
		case code := <-done:
			t.Fatalf("run exited early with %d; stderr:\n%s", code, errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}

	do := func(method, path, reqID, body string) (int, http.Header, string) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		if reqID != "" {
			req.Header.Set("X-Request-Id", reqID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		return resp.StatusCode, resp.Header, string(b)
	}

	// 1. Request-ID echo: an inbound id is honoured on the response; a
	// request without one gets a generated id.
	code, hdr, body := do("POST", "/v1/query", "obs-echo-1", `{"query":"?- sg(u0,Y)."}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	if got := hdr.Get("X-Request-Id"); got != "obs-echo-1" {
		t.Fatalf("X-Request-Id = %q, want obs-echo-1", got)
	}
	if _, hdr, _ = do("GET", "/v1/stats", "", ""); hdr.Get("X-Request-Id") == "" {
		t.Fatal("no generated X-Request-Id on a bare request")
	}

	// 2. Error bodies carry the request id too.
	code, _, body = do("POST", "/v1/query", "obs-bad-1", `{"query":"this is not datalog"}`)
	if code != http.StatusBadRequest || !strings.Contains(body, `"request_id":"obs-bad-1"`) {
		t.Fatalf("bad query: %d %s", code, body)
	}

	// 3. Slow-query capture: a forced evaluation lands in the slowlog with
	// the planner ranking and per-rule profiles, keyed by our request id.
	code, _, body = do("POST", "/v1/query", "obs-slow-1",
		`{"query":"?- sg(u0,Y).","strategy":"semi-naive","timeout_ms":120000}`)
	if code != http.StatusOK {
		t.Fatalf("slow query: %d %s", code, body)
	}
	var slowlog struct {
		Total   uint64 `json:"total"`
		Records []struct {
			RequestID string `json:"request_id"`
			Query     string `json:"query"`
			Strategy  string `json:"strategy"`
			Outcome   string `json:"outcome"`
			Planner   []struct {
				Strategy string `json:"strategy"`
			} `json:"planner"`
			Rules []struct {
				Rule string `json:"rule"`
			} `json:"rules"`
		} `json:"records"`
	}
	_, _, body = do("GET", "/v1/debug/slowlog", "", "")
	if err := json.Unmarshal([]byte(body), &slowlog); err != nil {
		t.Fatalf("slowlog: %v\n%s", err, body)
	}
	found := false
	for _, rec := range slowlog.Records {
		if rec.RequestID != "obs-slow-1" {
			continue
		}
		found = true
		if rec.Strategy != "semi-naive" || rec.Outcome != "ok" || rec.Query != "?- sg(u0,Y)." {
			t.Errorf("slowlog record = %+v", rec)
		}
		if len(rec.Planner) == 0 {
			t.Error("slowlog record has no planner ranking")
		}
		if len(rec.Rules) == 0 {
			t.Error("slowlog record has no per-rule profiles")
		}
	}
	if !found || slowlog.Total == 0 {
		t.Fatalf("slowlog (total %d) has no record for obs-slow-1:\n%s", slowlog.Total, body)
	}

	// The same request produced a structured warn line on stderr.
	if logs := errOut.String(); !strings.Contains(logs, `"msg":"slow query"`) ||
		!strings.Contains(logs, `"request_id":"obs-slow-1"`) {
		t.Errorf("no structured slow-query log line; stderr:\n%s", logs)
	}

	// 4. Live introspection and kill: a long evaluation shows up in
	// /v1/queries, DELETE by request id cancels it, and the client sees a
	// typed 409 with the id echoed.
	victim := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		code, _, body := do("POST", "/v1/query", "obs-victim-1",
			`{"query":"?- sg(u0,Y).","strategy":"semi-naive","timeout_ms":120000}`)
		victim <- struct {
			code int
			body string
		}{code, body}
	}()

	var queries struct {
		Queries []struct {
			ID        uint64 `json:"id"`
			RequestID string `json:"request_id"`
			Strategy  string `json:"strategy"`
			Facts     int64  `json:"facts"`
		} `json:"queries"`
		Count int `json:"count"`
	}
	deadline = time.Now().Add(10 * time.Second)
	visible := false
	for !visible {
		_, _, body = do("GET", "/v1/queries", "", "")
		if err := json.Unmarshal([]byte(body), &queries); err != nil {
			t.Fatalf("queries: %v\n%s", err, body)
		}
		for _, q := range queries.Queries {
			if q.RequestID == "obs-victim-1" && q.Strategy == "semi-naive" {
				visible = true
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never appeared in /v1/queries:\n%s", body)
		}
		if !visible {
			time.Sleep(5 * time.Millisecond)
		}
	}

	code, _, body = do("DELETE", "/v1/queries/obs-victim-1", "", "")
	if code != http.StatusOK || !strings.Contains(body, `"killed":true`) {
		t.Fatalf("kill: %d %s", code, body)
	}
	select {
	case res := <-victim:
		if res.code != http.StatusConflict || !strings.Contains(res.body, `"error":"killed"`) ||
			!strings.Contains(res.body, `"request_id":"obs-victim-1"`) {
			t.Fatalf("killed query returned %d %s", res.code, res.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed query did not unwind")
	}
	// The registry drained with it, and a kill on a finished query is a
	// crisp 404.
	_, _, body = do("GET", "/v1/queries", "", "")
	if !strings.Contains(body, `"count":0`) {
		t.Fatalf("registry not empty after kill:\n%s", body)
	}
	if code, _, _ = do("DELETE", "/v1/queries/obs-victim-1", "", ""); code != http.StatusNotFound {
		t.Fatalf("kill of a finished query = %d, want 404", code)
	}

	// 5. The labelled duration histogram made it to /metrics.
	_, _, body = do("GET", "/metrics", "", "")
	for _, w := range []string{
		`lincount_request_duration_seconds_count{handler="query",outcome="ok"}`,
		`lincount_request_duration_seconds_count{handler="query",outcome="killed"}`,
		"lincount_server_slow_queries_total",
		"lincount_server_queries_killed_total",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr:\n%s", code, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after signal; stderr:\n%s", errOut.String())
	}
}
