package main

// TestIncSmoke is the end-to-end incremental-maintenance check behind
// `make inc-smoke`: start lincountd in-process on a recursive program,
// drive it with concurrent writers issuing mixed assert/retract batches,
// then verify the maintained materialisation three ways — the server's
// materialized answers against its own from-scratch evaluation, against
// a library-side oracle over the known final fact set, and the
// maintenance gauges in /v1/stats.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lincount"
)

const tcText = `tc(X,Y) :- e(X,Y).
tc(X,Y) :- e(X,Z), tc(Z,Y).
`

func TestIncSmoke(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcText)
	facts := writeFile(t, dir, "facts.dl", "e(n0,n1). e(n1,n2). e(n2,n3).")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, errOut := &syncBuffer{}, &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-program", prog, "-facts", facts,
			"-addr", "127.0.0.1:0",
		}, out, errOut)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if m := bannerRE.FindStringSubmatch(errOut.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no serving banner; stderr:\n%s", errOut.String())
		}
		select {
		case code := <-done:
			t.Fatalf("run exited early with %d; stderr:\n%s", code, errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}

	post := func(path, body string) (int, string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Errorf("POST %s: %v", path, err)
			return 0, ""
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("POST %s: %v", path, err)
			return 0, ""
		}
		return resp.StatusCode, string(b)
	}

	// Mixed assert/retract load from concurrent writers. Writer w owns
	// the edges whose source index is ≡ w (mod writers), so ops from
	// different writers commute and the final fact set is the seed plus
	// each writer's last op per edge — deterministic under concurrency.
	const (
		writers = 4
		nodes   = 8
		steps   = 24
	)
	type edge struct{ a, b int }
	finalOp := make([]map[edge]bool, writers) // edge → present after last op
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		finalOp[w] = make(map[edge]bool)
		// Precompute writer w's deterministic op sequence (splitmix-style
		// PRNG; no shared state with the other writers).
		seq := make([]struct {
			e      edge
			assert bool
		}, steps)
		state := uint64(w)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
		next := func(n int) int {
			state += 0x9E3779B97F4A7C15
			z := state
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			z ^= z >> 31
			return int(z % uint64(n))
		}
		for i := range seq {
			a := w + writers*next(nodes/writers+1)
			if a >= nodes {
				a = w
			}
			seq[i].e = edge{a, next(nodes)}
			seq[i].assert = next(3) != 0 // 2:1 asserts over retracts
			finalOp[w][seq[i].e] = seq[i].assert
		}
		wg.Add(1)
		go func(w int, seq []struct {
			e      edge
			assert bool
		}) {
			defer wg.Done()
			for _, op := range seq {
				field := "assert"
				if !op.assert {
					field = "retract"
				}
				body := fmt.Sprintf(`{"%s":"e(n%d,n%d)."}`, field, op.e.a, op.e.b)
				if code, resp := post("/v1/write", body); code != http.StatusOK {
					t.Errorf("write %s: %d %s", body, code, resp)
					return
				}
			}
		}(w, seq)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("write load failed; stderr:\n%s", errOut.String())
	}

	// The oracle fact set: seed edges overlaid with each writer's final
	// op per edge (seed edges have source indexes 0..2, so writers may
	// have retracted or re-asserted them).
	present := map[edge]bool{{0, 1}: true, {1, 2}: true, {2, 3}: true}
	for w := range finalOp {
		for e, on := range finalOp[w] {
			present[e] = on
		}
	}
	var factSrc string
	for e, on := range present {
		if on {
			factSrc += fmt.Sprintf("e(n%d,n%d).\n", e.a, e.b)
		}
	}
	p, err := lincount.ParseProgram(tcText)
	if err != nil {
		t.Fatal(err)
	}
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts(factSrc); err != nil {
		t.Fatal(err)
	}
	oracleMat, err := p.Materialize(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}

	query := func(q, strategy string) [][]string {
		body := fmt.Sprintf(`{"query":"%s"}`, q)
		if strategy != "" {
			body = fmt.Sprintf(`{"query":"%s","strategy":"%s"}`, q, strategy)
		}
		code, resp := post("/v1/query", body)
		if code != http.StatusOK {
			t.Fatalf("query %s: %d %s", q, code, resp)
		}
		var qres struct {
			Answers  [][]string `json:"answers"`
			Strategy string     `json:"strategy"`
		}
		if err := json.Unmarshal([]byte(resp), &qres); err != nil {
			t.Fatal(err)
		}
		if strategy == "" && qres.Strategy != "materialized" {
			t.Fatalf("auto query served by %q, want materialized", qres.Strategy)
		}
		sort.Slice(qres.Answers, func(i, j int) bool {
			for k := range qres.Answers[i] {
				if qres.Answers[i][k] != qres.Answers[j][k] {
					return qres.Answers[i][k] < qres.Answers[j][k]
				}
			}
			return false
		})
		return qres.Answers
	}

	for src := 0; src < nodes; src++ {
		q := fmt.Sprintf("?- tc(n%d,Y).", src)
		mat := query(q, "")
		evaled := query(q, "semi-naive")
		if !reflect.DeepEqual(mat, evaled) {
			t.Fatalf("%s: materialized %v != evaluated %v", q, mat, evaled)
		}
		ans, err := oracleMat.Answers(q)
		if err != nil {
			t.Fatal(err)
		}
		oracle := append([][]string(nil), ans...)
		sort.Slice(oracle, func(i, j int) bool {
			for k := range oracle[i] {
				if oracle[i][k] != oracle[j][k] {
					return oracle[i][k] < oracle[j][k]
				}
			}
			return false
		})
		if !reflect.DeepEqual(mat, oracle) {
			t.Fatalf("%s: materialized %v != oracle %v", q, mat, oracle)
		}
	}

	// The maintenance gauges: the snapshot must still carry a maintained
	// materialisation, and at least one batch must have gone through the
	// delta engine rather than the fallback.
	r, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", r.StatusCode, sb)
	}
	var stats struct {
		Materialized bool  `json:"materialized"`
		MaintBatches int64 `json:"maint_batches"`
	}
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Materialized {
		t.Error("stats: materialized = false after write load")
	}
	if stats.MaintBatches == 0 {
		t.Error("stats: no write batch went through incremental maintenance")
	}

	cancel()
	select {
	case codeDone := <-done:
		if codeDone != 0 {
			t.Fatalf("exit %d; stderr:\n%s", codeDone, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit; stderr:\n%s", errOut.String())
	}
}
