package main

import (
	"bytes"
	"strings"
	"testing"
)

func script(t *testing.T, lines ...string) string {
	t.Helper()
	var out bytes.Buffer
	runREPL(strings.NewReader(strings.Join(lines, "\n")+"\n"), &out)
	return out.String()
}

func TestREPLQueryFlow(t *testing.T) {
	out := script(t,
		"sg(X,Y) :- flat(X,Y).",
		"sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).",
		"up(a,b). flat(b,c). down(c,d).",
		"?- sg(a,Y).",
		":quit",
	)
	if !strings.Contains(out, "a, d") {
		t.Errorf("answer missing:\n%s", out)
	}
	if !strings.Contains(out, "1 answer(s)") {
		t.Errorf("summary missing:\n%s", out)
	}
}

func TestREPLStrategySwitch(t *testing.T) {
	out := script(t,
		"e(a,b). e(b,c).",
		"tc(X,Y) :- e(X,Y).",
		"tc(X,Y) :- e(X,Z), tc(Z,Y).",
		":strategy magic",
		"?- tc(a,Y).",
		":strategy",
		":quit",
	)
	if !strings.Contains(out, "via magic") {
		t.Errorf("strategy not applied:\n%s", out)
	}
	if !strings.Contains(out, "strategy: magic") {
		t.Errorf("strategy not shown:\n%s", out)
	}
}

func TestREPLBadStrategyKeepsRunning(t *testing.T) {
	out := script(t, ":strategy bogus", ":quit")
	if !strings.Contains(out, "unknown strategy") {
		t.Errorf("error not reported:\n%s", out)
	}
}

func TestREPLRewrite(t *testing.T) {
	out := script(t,
		"sg(X,Y) :- flat(X,Y).",
		"sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).",
		":strategy counting",
		":rewrite ?- sg(a,Y).",
		":quit",
	)
	if !strings.Contains(out, "c_sg_bf(a,[]).") {
		t.Errorf("rewrite missing:\n%s", out)
	}
}

func TestREPLWhy(t *testing.T) {
	out := script(t,
		"sg(X,Y) :- flat(X,Y).",
		"sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).",
		"up(a,b). flat(b,c). down(c,d).",
		":why ?- sg(a,Y).",
		":quit",
	)
	if !strings.Contains(out, "exit") || !strings.Contains(out, "undo") {
		t.Errorf("witness missing:\n%s", out)
	}
}

func TestREPLLintAndList(t *testing.T) {
	out := script(t,
		"p(X,Y) :- q(X).",
		":lint",
		":list",
		":quit",
	)
	if !strings.Contains(out, "head variable Y") {
		t.Errorf("lint finding missing:\n%s", out)
	}
	if !strings.Contains(out, "p(X,Y) :- q(X).") {
		t.Errorf("list missing:\n%s", out)
	}
}

func TestREPLRejectsBadInputKeepsState(t *testing.T) {
	out := script(t,
		"good(a).",
		"bad(((",
		"?- good(X).",
		":quit",
	)
	if !strings.Contains(out, "a\n") {
		t.Errorf("state lost after bad input:\n%s", out)
	}
}

func TestREPLClear(t *testing.T) {
	out := script(t,
		"p(a).",
		":clear",
		"?- p(X).",
		":quit",
	)
	if !strings.Contains(out, "no.") {
		t.Errorf("clear did not reset:\n%s", out)
	}
}

func TestREPLNoAnswers(t *testing.T) {
	out := script(t, "p(a).", "?- p(zzz).", ":quit")
	if !strings.Contains(out, "no.") {
		t.Errorf("missing 'no.':\n%s", out)
	}
}

func TestREPLHelpAndUnknown(t *testing.T) {
	out := script(t, ":help", ":wat", ":quit")
	if !strings.Contains(out, "commands:") || !strings.Contains(out, "unknown command :wat") {
		t.Errorf("help/unknown handling:\n%s", out)
	}
}

func TestREPLLastBeforeAnyQuery(t *testing.T) {
	out := script(t, ":last", ":quit")
	if !strings.Contains(out, "no query has run yet.") {
		t.Errorf("empty :last handling:\n%s", out)
	}
}

func TestREPLLastShowsResolvedStrategy(t *testing.T) {
	out := script(t,
		"sg(X,Y) :- flat(X,Y).",
		"sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).",
		"up(a,b). flat(b,c). down(c,d).",
		"?- sg(a,Y).",
		":last",
		":quit",
	)
	if !strings.Contains(out, "query:    ?- sg(a,Y).") {
		t.Errorf(":last query line missing:\n%s", out)
	}
	if !strings.Contains(out, "resolved: ") || !strings.Contains(out, "answered: ") {
		t.Errorf(":last strategy lines missing:\n%s", out)
	}
	if !strings.Contains(out, "stats:    ") {
		t.Errorf(":last stats line missing:\n%s", out)
	}
}
