// Command lincount-repl is an interactive shell for the lincount engine:
// type facts and rules to accumulate a program, queries to evaluate them,
// and meta-commands to inspect rewrites and statistics.
//
//	$ go run ./cmd/lincount-repl
//	> sg(X,Y) :- flat(X,Y).
//	> sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
//	> up(a,b). flat(b,c). down(c,d).
//	> ?- sg(a,Y).
//	a, d
//	> :strategy counting
//	> :rewrite ?- sg(a,Y).
//	> :why ?- sg(a,Y).
//	> :quit
//
// Because programs are immutable once parsed, the REPL re-parses the
// accumulated source after each definition — fine at interactive scale.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"lincount"
	"lincount/internal/obsv"
)

type session struct {
	src strings.Builder
	// prog is the parsed form of src, reused across queries so repeated
	// goals hit the program's plan cache; nil after src changes
	// (defining, :clear), which also discards every cached plan.
	prog     *lincount.Program
	strategy lincount.Strategy
	out      *bufio.Writer
	// last is the most recent successful evaluation, for :last.
	last     *lincount.Result
	lastGoal string
	// interrupt delivers SIGINT while a query runs; nil in tests. The
	// subscription is persistent (signal.Notify, not NotifyContext) so a
	// Ctrl-C aborts the running query and the shell keeps going.
	interrupt <-chan os.Signal
	// timeout bounds each query (0 = none).
	timeout time.Duration
	// traceOn records a structured trace per query (:trace on|off);
	// lastTrace holds the most recent one for :trace show and /trace.json.
	traceOn   bool
	lastTrace *lincount.Tracer
}

func main() {
	timeout := flag.Duration("timeout", 0, "abort each query after this long (e.g. 10s; 0 = no limit)")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug/pprof/* and /trace.json on this address (e.g. 127.0.0.1:9464)")
	flag.Parse()
	if *obsAddr != "" {
		server, err := obsv.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lincount-repl:", err)
			os.Exit(1)
		}
		// Graceful: finish an in-flight /metrics scrape or pprof profile
		// before the process exits, instead of dropping the connection.
		defer server.ShutdownTimeout(2 * time.Second)
		fmt.Fprintf(os.Stderr, "lincount-repl: observability on http://%s/\n", server.Addr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	runREPLWith(os.Stdin, os.Stdout, sig, *timeout)
}

// runREPL drives the shell over the given streams; factored out of main so
// tests can script it.
func runREPL(in io.Reader, out io.Writer) {
	runREPLWith(in, out, nil, 0)
}

// runREPLWith is runREPL with the interactive extras: an interrupt channel
// whose deliveries cancel the in-flight query, and a per-query timeout.
func runREPLWith(in io.Reader, out io.Writer, interrupt <-chan os.Signal, timeout time.Duration) {
	s := &session{strategy: lincount.Auto, out: bufio.NewWriter(out), interrupt: interrupt, timeout: timeout}
	defer s.out.Flush()

	fmt.Fprintln(s.out, "lincount interactive shell — :help for commands")
	s.out.Flush()
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(s.out, "> ")
		s.out.Flush()
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, ":"):
			if quit := s.command(line); quit {
				return
			}
		case strings.HasPrefix(line, "?-"):
			s.query(line)
		default:
			s.define(line)
		}
		s.out.Flush()
	}
}

func (s *session) command(line string) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		return true
	case ":help", ":h":
		fmt.Fprint(s.out, `commands:
  <rule or fact>.          add to the program (e.g. up(a,b). or p(X) :- q(X).)
  ?- goal.                 evaluate a query with the current strategy
  :strategy [name]         show or set the strategy (auto, naive, semi-naive,
                           magic, magic-sup, counting-classic, counting,
                           counting-reduced, counting-runtime)
  :rewrite ?- goal.        show the rewritten program for the current strategy
  :why ?- goal.            answers with derivation witnesses (linear programs)
  :lint                    run static diagnostics over the program
  :list                    show the accumulated program
  :last                    details of the last query: resolved strategy,
                           degradation attempts with their work counters
                           (see also :stats and :trace)
  :stats                   full statistics of the last query
  :trace on|off            record a structured trace per query (show the
                           last one with :trace show)
  :load <path>             read rules/facts from a file
  :clear                   start over
  :quit                    leave
`)
	case ":strategy":
		if len(fields) == 1 {
			fmt.Fprintf(s.out, "strategy: %s\n", s.strategy)
			return false
		}
		st, err := lincount.ParseStrategy(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		s.strategy = st
	case ":lint":
		p, err := s.program()
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		findings, _ := p.Lint()
		if len(findings) == 0 {
			fmt.Fprintln(s.out, "clean.")
		}
		for _, f := range findings {
			fmt.Fprintln(s.out, f)
		}
	case ":list":
		p, err := s.program()
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		fmt.Fprint(s.out, p.Text())
	case ":last":
		if s.last == nil {
			fmt.Fprintln(s.out, "no query has run yet.")
			return false
		}
		r := s.last
		fmt.Fprintf(s.out, "query:    %s\n", s.lastGoal)
		fmt.Fprintf(s.out, "resolved: %s\n", r.Resolved)
		fmt.Fprintf(s.out, "answered: %s (%d answer(s))\n", r.Strategy, len(r.Answers))
		for i, a := range r.Degraded {
			fmt.Fprintf(s.out, "attempt %d: %s failed after %s: %s\n", i+1, a.Strategy, a.Duration.Round(time.Microsecond), a.Err)
			fmt.Fprintf(s.out, "           work: %d inferences, %d facts, %d probes, counting-set %d\n",
				a.Stats.Inferences, a.Stats.DerivedFacts, a.Stats.Probes, a.Stats.CountingNodes)
		}
		fmt.Fprintf(s.out, "stats:    %d inferences, %d derived, %d probes, %s (:stats for all)\n",
			r.Stats.Inferences, r.Stats.DerivedFacts, r.Stats.Probes, r.Stats.Duration.Round(time.Microsecond))
	case ":stats":
		if s.last == nil {
			fmt.Fprintln(s.out, "no query has run yet.")
			return false
		}
		st := s.last.Stats
		fmt.Fprintf(s.out, "query:         %s\n", s.lastGoal)
		fmt.Fprintf(s.out, "strategy:      %s\n", s.last.Strategy)
		fmt.Fprintf(s.out, "iterations:    %d\n", st.Iterations)
		fmt.Fprintf(s.out, "inferences:    %d\n", st.Inferences)
		fmt.Fprintf(s.out, "derived facts: %d\n", st.DerivedFacts)
		fmt.Fprintf(s.out, "probes:        %d\n", st.Probes)
		fmt.Fprintf(s.out, "counting set:  %d\n", st.CountingNodes)
		fmt.Fprintf(s.out, "answer tuples: %d\n", st.AnswerTuples)
		fmt.Fprintf(s.out, "arena values:  %d\n", st.ArenaValues)
		fmt.Fprintf(s.out, "duration:      %s\n", st.Duration.Round(time.Microsecond))
	case ":trace":
		if len(fields) != 2 {
			fmt.Fprintf(s.out, "trace: %s (usage: :trace on|off|show)\n", onOff(s.traceOn))
			return false
		}
		switch fields[1] {
		case "on":
			s.traceOn = true
			fmt.Fprintln(s.out, "trace: on (each query records a trace; :trace show prints the last one)")
		case "off":
			s.traceOn = false
			fmt.Fprintln(s.out, "trace: off")
		case "show":
			if s.lastTrace == nil {
				fmt.Fprintln(s.out, "no traced query has run yet (:trace on, then run a query).")
				return false
			}
			if err := s.lastTrace.WriteText(s.out); err != nil {
				fmt.Fprintln(s.out, err)
			}
		default:
			fmt.Fprintln(s.out, "usage: :trace on|off|show")
		}
	case ":clear":
		s.src.Reset()
		s.prog = nil
	case ":load":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: :load <path>")
			return false
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		s.define(string(data))
	case ":rewrite":
		goal := strings.TrimSpace(strings.TrimPrefix(line, ":rewrite"))
		p, err := s.program()
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		prog, g, err := lincount.Rewrite(p, goal, s.strategy)
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		fmt.Fprintf(s.out, "%sgoal: %s\n", prog, g)
	case ":why":
		goal := strings.TrimSpace(strings.TrimPrefix(line, ":why"))
		p, err := s.program()
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		exps, err := lincount.Explain(p, lincount.NewDatabase(p), goal)
		if err != nil {
			fmt.Fprintln(s.out, err)
			return false
		}
		for _, e := range exps {
			fmt.Fprintln(s.out, strings.Join(e.Answer, ", "))
			for _, l := range strings.Split(strings.TrimRight(e.Witness, "\n"), "\n") {
				fmt.Fprintf(s.out, "    %s\n", l)
			}
		}
	default:
		fmt.Fprintf(s.out, "unknown command %s (:help)\n", fields[0])
	}
	return false
}

// define validates and appends program text. The validation parse of the
// extended source becomes the session's cached program (the old one is
// discarded along with its compiled plans — rules changed).
func (s *session) define(text string) {
	candidate := s.src.String() + text + "\n"
	p, err := lincount.ParseProgram(candidate)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	s.src.WriteString(text)
	s.src.WriteByte('\n')
	s.prog = p
}

// program returns the parsed form of the accumulated source, cached until
// the source changes. Reusing one Program across queries is what makes
// the plan cache effective in the shell: a repeated goal skips adornment,
// analysis and rewriting entirely.
func (s *session) program() (*lincount.Program, error) {
	if s.prog == nil {
		p, err := lincount.ParseProgram(s.src.String())
		if err != nil {
			return nil, err
		}
		s.prog = p
	}
	return s.prog, nil
}

// query evaluates one goal against the accumulated program. Facts live in
// the program itself (the engine treats ground bodiless rules as tuples).
// A SIGINT delivered while the evaluation runs cancels it; the shell
// reports "interrupted." and prompts again.
func (s *session) query(goal string) {
	p, err := s.program()
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if s.interrupt != nil {
		// Drop a Ctrl-C delivered while the shell was idle so it cannot
		// retroactively abort this query.
		select {
		case <-s.interrupt:
		default:
		}
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-s.interrupt:
				cancel()
			case <-done:
			}
		}()
	}
	var opts []lincount.Option
	if s.timeout > 0 {
		opts = append(opts, lincount.WithMaxDuration(s.timeout))
	}
	if s.traceOn {
		s.lastTrace = lincount.NewTracer()
		obsv.SetLastTrace(s.lastTrace)
		opts = append(opts, lincount.WithTracer(s.lastTrace))
	}
	pq, err := lincount.Prepare(p, goal, s.strategy, opts...)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	res, err := pq.EvalContext(ctx, lincount.NewDatabase(p))
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(s.out, "interrupted.")
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(s.out, "timed out after %s.\n", s.timeout)
		default:
			fmt.Fprintln(s.out, err)
		}
		return
	}
	s.last, s.lastGoal = res, strings.TrimSpace(goal)
	if len(res.Answers) == 0 {
		fmt.Fprintln(s.out, "no.")
		s.printDegradation(res)
		return
	}
	for _, row := range res.Answers {
		fmt.Fprintln(s.out, strings.Join(row, ", "))
	}
	fmt.Fprintf(s.out, "%% %d answer(s) via %s, %d inferences\n",
		len(res.Answers), res.Strategy, res.Stats.Inferences)
	s.printDegradation(res)
}

// printDegradation notes in the result banner when the answer came from
// a fallback rather than the strategy Auto first resolved to, including
// the work the failed attempts burned before giving up.
func (s *session) printDegradation(res *lincount.Result) {
	if len(res.Degraded) == 0 {
		return
	}
	var inf, facts int64
	for _, a := range res.Degraded {
		inf += a.Stats.Inferences
		facts += a.Stats.DerivedFacts
	}
	fmt.Fprintf(s.out, "%% degraded: %s failed %d attempt(s) (%d inferences, %d facts wasted) before %s answered (:last for details)\n",
		res.Resolved, len(res.Degraded), inf, facts, res.Strategy)
}

// onOff renders a toggle state.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
