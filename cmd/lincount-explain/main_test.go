package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.dl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sgText = `sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
?- sg(a,Y).
`

func TestExplainAllStrategies(t *testing.T) {
	prog := write(t, sgText)
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-program", prog}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"── magic ──", "── magic-sup ──", "── counting ──",
		"── counting-runtime ──", "m_sg_bf(a).", "c_sg_bf(a,[]).",
		"cycle_sg_bf",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExplainSingleStrategyWithPlan(t *testing.T) {
	prog := write(t, sgText)
	var out, errOut bytes.Buffer
	code := run(context.Background(), []string{"-program", prog, "-strategy", "counting", "-plan"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	text := out.String()
	if !strings.Contains(text, "plan:") || !strings.Contains(text, "semi-naive fixpoint") {
		t.Errorf("plan missing:\n%s", text)
	}
	if strings.Contains(text, "── magic ──") {
		t.Error("other strategies shown despite -strategy")
	}
}

func TestExplainNotApplicableShown(t *testing.T) {
	prog := write(t, `tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
?- tc(a,Y).
`)
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-program", prog}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "not applicable") {
		t.Errorf("non-linear program did not show inapplicability:\n%s", out.String())
	}
}

func TestExplainErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{}, &out, &errOut); code == 0 {
		t.Error("missing -program accepted")
	}
	noQuery := write(t, "p(a).\n")
	if code := run(context.Background(), []string{"-program", noQuery}, &out, &errOut); code == 0 {
		t.Error("missing query accepted")
	}
}
