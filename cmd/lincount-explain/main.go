// Command lincount-explain prints the rewritten program each strategy
// would evaluate for a given query, side by side — the quickest way to see
// what the magic-set, counting and reduction transformations do to a
// program. With -plan it also prints the compiled join orders. With
// -analyze (and -facts) it runs the query under a tracer and prints an
// EXPLAIN ANALYZE-style table: per-rule runs, inferences, derived tuples
// and wall-clock time.
//
// Usage:
//
//	lincount-explain -program sg.dl -query '?- sg(a,Y).' [-strategy counting] [-plan]
//	lincount-explain -program sg.dl -facts data.dl -analyze
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"lincount"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main so tests can drive it. ctx
// (plus the optional -timeout) bounds the per-strategy rewriting loop: a
// SIGINT stops after the strategy in flight instead of printing the rest.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincount-explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programPath = fs.String("program", "", "path to the Datalog program (required)")
		factsPath   = fs.String("facts", "", "comma-separated fact files (.dl text or .lcdb snapshots)")
		query       = fs.String("query", "", "query, e.g. '?- sg(a,Y).' (defaults to the program's first embedded query)")
		strategy    = fs.String("strategy", "", "show only this strategy (default: all; with -analyze: evaluate with it, default auto)")
		plan        = fs.Bool("plan", false, "also print the compiled evaluation plan per strategy")
		analyze     = fs.Bool("analyze", false, "evaluate the query under a tracer and print per-rule work (EXPLAIN ANALYZE)")
		timeout     = fs.Duration("timeout", 0, "abort after this long (e.g. 30s; 0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "lincount-explain:", err)
		return 1
	}

	if *programPath == "" {
		fmt.Fprintln(stderr, "lincount-explain: -program is required")
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return fail(err)
	}
	p, err := lincount.ParseProgram(string(src))
	if err != nil {
		return fail(err)
	}
	q := *query
	if q == "" {
		qs := p.Queries()
		if len(qs) == 0 {
			return fail(fmt.Errorf("no query: pass -query or embed '?- goal.' in the program"))
		}
		q = qs[0]
	}

	if *analyze {
		s := lincount.Auto
		if *strategy != "" {
			var err error
			if s, err = lincount.ParseStrategy(*strategy); err != nil {
				return fail(err)
			}
		}
		db := lincount.NewDatabase(p)
		if *factsPath != "" {
			for _, path := range strings.Split(*factsPath, ",") {
				if err := loadFacts(db, path); err != nil {
					return fail(err)
				}
			}
		}
		return runAnalyze(ctx, stdout, stderr, p, db, q, s)
	}

	strategies := []lincount.Strategy{
		lincount.Magic, lincount.MagicSup, lincount.CountingClassic,
		lincount.Counting, lincount.CountingReduced, lincount.CountingRuntime,
	}
	if *strategy != "" {
		s, err := lincount.ParseStrategy(*strategy)
		if err != nil {
			return fail(err)
		}
		strategies = []lincount.Strategy{s}
	}

	fmt.Fprintf(stdout, "%% query: %s\n%% original program:\n%s\n", q, indent(p.Text()))
	// Show what Auto would do before the per-strategy rewrites: the
	// planner's ranking (cost estimates use facts embedded in the program;
	// no database is loaded here) and the graceful-degradation order it
	// implies.
	if choices, err := lincount.PlannerChoices(p, nil, q); err == nil {
		names := make([]string, len(choices))
		for i, c := range choices {
			names[i] = c.Strategy.String()
		}
		fmt.Fprintf(stdout, "%% auto resolves to %s; fallback chain: %s\n", choices[0].Strategy, strings.Join(names, " -> "))
		for _, c := range choices {
			fmt.Fprintf(stdout, "%%   cost %6.0f  %-17s %s\n", c.Cost, c.Strategy, c.Reason)
		}
		fmt.Fprintln(stdout)
	}
	for _, s := range strategies {
		if ctx.Err() != nil {
			fmt.Fprintln(stderr, "lincount-explain: interrupted")
			return 1
		}
		prog, goal, err := lincount.Rewrite(p, q, s)
		fmt.Fprintf(stdout, "%% ── %s ──\n", s)
		if err != nil {
			fmt.Fprintf(stdout, "%%   not applicable: %v\n\n", err)
			continue
		}
		fmt.Fprintf(stdout, "%s%%   goal: %s\n", indent(prog), goal)
		if *plan {
			if pl, err := lincount.Plan(p, nil, q, s); err == nil {
				fmt.Fprintf(stdout, "%%   plan:\n%s", indent(pl))
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// loadFacts reads one fact file (text or binary snapshot) into db.
func loadFacts(db *lincount.Database, path string) error {
	if strings.HasSuffix(path, ".lcdb") {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return db.LoadSnapshot(f)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := db.LoadFacts(string(data)); err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	return nil
}

// runAnalyze evaluates q under a tracer and prints the per-rule profile —
// an EXPLAIN ANALYZE for Datalog. Rows appear in component (evaluation)
// order; for rewriting strategies the rules are those of the rewritten
// program.
func runAnalyze(ctx context.Context, stdout, stderr io.Writer, p *lincount.Program, db *lincount.Database, q string, s lincount.Strategy) int {
	tr := lincount.NewTracer()
	res, err := lincount.EvalContext(ctx, p, db, q, s, lincount.WithTracer(tr))
	if err != nil {
		fmt.Fprintln(stderr, "lincount-explain:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%% query: %s\n", q)
	if res.Resolved != res.Strategy || s == lincount.Auto {
		fmt.Fprintf(stdout, "%% strategy: %s (requested %s, resolved %s)\n", res.Strategy, s, res.Resolved)
	} else {
		fmt.Fprintf(stdout, "%% strategy: %s\n", res.Strategy)
	}
	for i, a := range res.Degraded {
		fmt.Fprintf(stdout, "%% attempt %d: %s failed after %s: %s\n", i+1, a.Strategy, a.Duration.Round(time.Microsecond), a.Err)
		fmt.Fprintf(stdout, "%%   wasted work: inferences=%d facts=%d probes=%d counting-set=%d\n",
			a.Stats.Inferences, a.Stats.DerivedFacts, a.Stats.Probes, a.Stats.CountingNodes)
	}
	if len(res.RuleProfile) == 0 {
		fmt.Fprintf(stdout, "%% no per-rule profile: %s does not evaluate through the rule engine\n", res.Strategy)
	} else {
		rows := [][]string{{"rule", "runs", "inferences", "tuples", "time"}}
		for _, rp := range res.RuleProfile {
			rows = append(rows, []string{
				rp.Rule, fmt.Sprint(rp.Runs), fmt.Sprint(rp.Inferences),
				fmt.Sprint(rp.DerivedFacts), rp.Duration.Round(time.Microsecond).String(),
			})
		}
		widths := make([]int, len(rows[0]))
		for _, row := range rows {
			for i, c := range row {
				if len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		for ri, row := range rows {
			for i, c := range row {
				if i == len(row)-1 {
					fmt.Fprintf(stdout, "%s\n", c)
				} else {
					fmt.Fprintf(stdout, "%-*s  ", widths[i], c)
				}
			}
			if ri == 0 {
				total := 0
				for _, w := range widths {
					total += w + 2
				}
				fmt.Fprintln(stdout, strings.Repeat("-", total))
			}
		}
	}
	st := res.Stats
	fmt.Fprintf(stdout, "%% totals: answers=%d inferences=%d facts=%d probes=%d counting-set=%d iterations=%d in %s\n",
		len(res.Answers), st.Inferences, st.DerivedFacts, st.Probes,
		st.CountingNodes, st.Iterations, st.Duration.Round(time.Microsecond))
	return 0
}

func indent(text string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
