// Command lincount-explain prints the rewritten program each strategy
// would evaluate for a given query, side by side — the quickest way to see
// what the magic-set, counting and reduction transformations do to a
// program. With -plan it also prints the compiled join orders.
//
// Usage:
//
//	lincount-explain -program sg.dl -query '?- sg(a,Y).' [-strategy counting] [-plan]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"lincount"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main so tests can drive it. ctx
// (plus the optional -timeout) bounds the per-strategy rewriting loop: a
// SIGINT stops after the strategy in flight instead of printing the rest.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincount-explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programPath = fs.String("program", "", "path to the Datalog program (required)")
		query       = fs.String("query", "", "query, e.g. '?- sg(a,Y).' (defaults to the program's first embedded query)")
		strategy    = fs.String("strategy", "", "show only this strategy (default: all)")
		plan        = fs.Bool("plan", false, "also print the compiled evaluation plan per strategy")
		timeout     = fs.Duration("timeout", 0, "abort after this long (e.g. 30s; 0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "lincount-explain:", err)
		return 1
	}

	if *programPath == "" {
		fmt.Fprintln(stderr, "lincount-explain: -program is required")
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return fail(err)
	}
	p, err := lincount.ParseProgram(string(src))
	if err != nil {
		return fail(err)
	}
	q := *query
	if q == "" {
		qs := p.Queries()
		if len(qs) == 0 {
			return fail(fmt.Errorf("no query: pass -query or embed '?- goal.' in the program"))
		}
		q = qs[0]
	}

	strategies := []lincount.Strategy{
		lincount.Magic, lincount.MagicSup, lincount.CountingClassic,
		lincount.Counting, lincount.CountingReduced, lincount.CountingRuntime,
	}
	if *strategy != "" {
		s, err := lincount.ParseStrategy(*strategy)
		if err != nil {
			return fail(err)
		}
		strategies = []lincount.Strategy{s}
	}

	fmt.Fprintf(stdout, "%% query: %s\n%% original program:\n%s\n", q, indent(p.Text()))
	// Show what Auto would do before the per-strategy rewrites: its
	// resolution plus the graceful-degradation order behind it.
	if chain, err := lincount.FallbackChain(p, q); err == nil {
		names := make([]string, len(chain))
		for i, s := range chain {
			names[i] = s.String()
		}
		fmt.Fprintf(stdout, "%% auto resolves to %s; fallback chain: %s\n\n", chain[0], strings.Join(names, " -> "))
	}
	for _, s := range strategies {
		if ctx.Err() != nil {
			fmt.Fprintln(stderr, "lincount-explain: interrupted")
			return 1
		}
		prog, goal, err := lincount.Rewrite(p, q, s)
		fmt.Fprintf(stdout, "%% ── %s ──\n", s)
		if err != nil {
			fmt.Fprintf(stdout, "%%   not applicable: %v\n\n", err)
			continue
		}
		fmt.Fprintf(stdout, "%s%%   goal: %s\n", indent(prog), goal)
		if *plan {
			if pl, err := lincount.Plan(p, nil, q, s); err == nil {
				fmt.Fprintf(stdout, "%%   plan:\n%s", indent(pl))
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func indent(text string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
