package main

// Golden-file tests over the explain output: every strategy's rewritten
// program plus the planner's ranking, for the representative program
// quartet (mixed-linear sg, right-linear, left-linear, nonlinear).
// The goldens pin the rewrites — a pipeline or planner change that
// alters any rewritten program or the auto resolution shows up as a
// golden diff, not as a silent behavior change. Regenerate with
//
//	go test ./cmd/lincount-explain -run TestExplainGolden -update

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

func TestExplainGolden(t *testing.T) {
	progs, err := filepath.Glob(filepath.Join("testdata", "explain", "*.dl"))
	if err != nil || len(progs) == 0 {
		t.Fatalf("no golden programs found: %v", err)
	}
	for _, prog := range progs {
		name := strings.TrimSuffix(filepath.Base(prog), ".dl")
		t.Run(name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(context.Background(), []string{"-program", prog, "-plan"}, &out, &errOut); code != 0 {
				t.Fatalf("exit %d: %s", code, errOut.String())
			}
			golden := strings.TrimSuffix(prog, ".dl") + ".golden"
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (regenerate with -update if intended):\n%s",
					golden, diffText(string(want), out.String()))
			}
		})
	}
}

// diffText renders a minimal line diff (golden files are small).
func diffText(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			sb.WriteString("- " + w + "\n+ " + g + "\n")
		}
	}
	return sb.String()
}
