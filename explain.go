package lincount

import (
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/counting"
	"lincount/internal/parser"
)

// Explanation pairs one answer row of a query with a derivation witness:
// the exit-rule application and the sequence of recursive-rule undo steps
// that produced it. Witnesses come from the counting runtime, whose
// predecessor entries (the paper's §3.4 pointer structure) record exactly
// the information needed to reconstruct them.
type Explanation struct {
	// Answer is the full answer row (bound and free arguments).
	Answer []string
	// Witness is the formatted derivation, one step per line.
	Witness string
}

// CountingSet renders the counting set the runtime would build for the
// query over db, in the paper's notation: node identifiers in depth-first
// discovery order with their ahead predecessor sets, cycle links from back
// arcs, and the combined f sets (see §4 and Example 5 of the paper).
func CountingSet(p *Program, db *Database, query string) (string, error) {
	if db != nil && db.owner != p {
		return "", ErrWrongDatabase
	}
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return "", fmt.Errorf("lincount: parsing query: %w", err)
	}
	sh := p.sharedFor(ast.FormatQuery(p.bank, q), q, false)
	an, err := sh.Analysis()
	if err != nil {
		return "", err
	}
	return counting.DumpCountingSet(an, db.db)
}

// Explain evaluates query with the counting runtime, recording provenance,
// and returns every answer with its derivation witness. It requires a
// linear program with a bound query argument (the counting class).
func Explain(p *Program, db *Database, query string) ([]Explanation, error) {
	if db != nil && db.owner != p {
		return nil, ErrWrongDatabase
	}
	q, err := parser.ParseQuery(p.bank, query)
	if err != nil {
		return nil, fmt.Errorf("lincount: parsing query: %w", err)
	}
	sh := p.sharedFor(ast.FormatQuery(p.bank, q), q, false)
	a, err := sh.Adorned()
	if err != nil {
		return nil, err
	}
	if len(a.Program.Rules) == 0 {
		return nil, fmt.Errorf("lincount: %s is extensional; nothing to explain",
			p.bank.Symbols().String(q.Goal.Pred))
	}
	an, err := sh.Analysis()
	if err != nil {
		return nil, err
	}
	rt, res, err := counting.RunWithProvenance(an, db.db, counting.RuntimeOptions{})
	if err != nil {
		return nil, err
	}
	out := make([]Explanation, 0, len(res.Answers))
	full := counting.ReconstructRuntimeAnswers(an, res.Answers)
	for i, frees := range res.Answers {
		d, err := rt.Explain(frees)
		if err != nil {
			return nil, err
		}
		out = append(out, Explanation{
			Answer:  p.formatTuple(full[i]),
			Witness: d.Format(p.bank),
		})
	}
	return out, nil
}
