package lincount_test

import (
	"bytes"
	"fmt"
	"strings"

	"lincount"
)

// The same-generation program of the paper's Example 1.
const sgExample = `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`

func ExampleEval() {
	p := lincount.MustParseProgram(sgExample)
	db := lincount.NewDatabase(p)
	_ = db.LoadFacts("up(a,b). flat(b,b1). down(b1,c).")

	res, _ := lincount.Eval(p, db, "?- sg(a,Y).", lincount.Auto)
	for _, row := range res.Answers {
		fmt.Println(strings.Join(row, " "))
	}
	// Output: a c
}

func ExampleEval_strategies() {
	p := lincount.MustParseProgram(sgExample)
	db := lincount.NewDatabase(p)
	_ = db.LoadFacts("up(a,b). up(b,c). flat(c,c1). down(c1,c2). down(c2,c3).")

	for _, s := range []lincount.Strategy{lincount.Magic, lincount.Counting} {
		res, _ := lincount.Eval(p, db, "?- sg(a,Y).", s)
		fmt.Printf("%s: %d answers, counting/magic set size %d\n",
			res.Strategy, len(res.Answers), res.Stats.CountingNodes)
	}
	// Output:
	// magic: 1 answers, counting/magic set size 3
	// counting: 1 answers, counting/magic set size 3
}

func ExampleRewrite() {
	p := lincount.MustParseProgram(sgExample)
	prog, goal, _ := lincount.Rewrite(p, "?- sg(a,Y).", lincount.Counting)
	fmt.Print(prog)
	fmt.Println("goal:", goal)
	// Output:
	// c_sg_bf(a,[]).
	// c_sg_bf(X1,[e(r1,[])|L]) :- c_sg_bf(X,L), up(X,X1).
	// sg_bf(Y,L) :- c_sg_bf(X,L), flat(X,Y).
	// sg_bf(Y,L) :- sg_bf(Y1,[e(r1,[])|L]), down(Y1,Y).
	// goal: ?- sg_bf(Y,[]).
}

func ExampleExplain() {
	p := lincount.MustParseProgram(sgExample)
	db := lincount.NewDatabase(p)
	_ = db.LoadFacts("up(a,b). flat(b,b1). down(b1,c).")

	exps, _ := lincount.Explain(p, db, "?- sg(a,Y).")
	for _, e := range exps {
		fmt.Printf("%s has %d derivation steps\n",
			strings.Join(e.Answer, " "), strings.Count(e.Witness, "\n"))
	}
	// Output: a c has 2 derivation steps
}

func ExampleDatabase_Save() {
	p := lincount.MustParseProgram(sgExample)
	db := lincount.NewDatabase(p)
	_ = db.LoadFacts("up(a,b). flat(b,b1). down(b1,c).")

	var snapshot bytes.Buffer
	_ = db.Save(&snapshot)

	restored := lincount.NewDatabase(p)
	_ = restored.LoadSnapshot(&snapshot)
	fmt.Println(restored.FactCount())
	// Output: 3
}

func ExampleProgram_Lint() {
	p := lincount.MustParseProgram("path(X,Y) :- edge(X).\n")
	findings, hasErrors := p.Lint()
	fmt.Println(hasErrors)
	fmt.Println(findings[0])
	// Output:
	// true
	// error: rule 1 (path(X,Y) :- edge(X).): head variable Y is not bound by a positive body literal
}

func ExampleParseStrategy() {
	s, _ := lincount.ParseStrategy("counting-runtime")
	fmt.Println(s)
	// Output: counting-runtime
}
