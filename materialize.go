package lincount

import (
	"context"
	"errors"

	"lincount/internal/incremental"
	"lincount/internal/parser"
)

// ErrNotIncremental reports that a program is outside the incrementally
// maintainable fragment (currently: any rule using negation). Callers
// should fall back to full re-evaluation (Eval) on updates.
var ErrNotIncremental = incremental.ErrNotIncremental

// WriteOp is one ordered write of an update batch: a set of facts to
// assert (Retract false) or retract (Retract true), as fact text in the
// LoadFacts format. The ordering within a batch is significant — a
// retract followed by a re-assert of the same fact in one batch leaves
// the fact present, exactly as if the ops were applied sequentially.
type WriteOp struct {
	Retract bool
	Text    string
}

// WriteError reports that an op of an Apply batch was rejected (syntax
// error, non-fact clause, or arity mismatch with an existing relation).
// The whole batch is rejected; nothing was applied.
type WriteError struct {
	// Index is the position of the offending op in the batch.
	Index int
	// Err is the underlying parse or validation error.
	Err error
}

func (e *WriteError) Error() string { return e.Err.Error() }
func (e *WriteError) Unwrap() error { return e.Err }

// ApplyInfo reports the work one Apply performed.
type ApplyInfo struct {
	// RetractedPerOp holds, for each retract op, how many of its facts
	// were present (under sequential semantics) when it executed; assert
	// ops report 0.
	RetractedPerOp []int
	// NetInserted and NetDeleted count the base facts that changed after
	// cancelling retract/re-assert pairs within the batch.
	NetInserted int
	NetDeleted  int
	// DerivedAdded and DerivedRemoved count derived tuples that appeared
	// and disappeared.
	DerivedAdded   int
	DerivedRemoved int
	// Overdeleted and Rederived count the deletion pass's traffic in
	// recursive components: tuples provisionally deleted by the
	// overcounting sweep, and those rederived because alternative
	// derivations survive.
	Overdeleted int
	Rederived   int
}

// Materialization is a fully materialised evaluation of a Program over
// one Database epoch, maintained incrementally: Apply produces the next
// epoch's Materialization from a batch of assert/retract ops without
// re-running the fixpoint, using derivation counting (exact decrements
// for non-recursive predicates, overdelete/rederive for recursive ones)
// for deletions and watermark-resumed semi-naive rounds for insertions.
//
// Like Database forks, materialisations form a linear single-writer
// chain: Apply never mutates its receiver, so superseded epochs keep
// serving concurrent readers until released.
type Materialization struct {
	owner *Program
	base  *Database
	mat   *incremental.Materialization
}

// Materialize evaluates p's rules over db to a fixpoint and returns the
// maintained materialisation. Returns ErrNotIncremental (wrapped) when
// the program uses features outside the maintainable fragment.
func (p *Program) Materialize(ctx context.Context, db *Database) (*Materialization, error) {
	if db.owner != p {
		return nil, ErrWrongDatabase
	}
	m, err := incremental.New(ctx, p.program, db.db, incremental.Options{})
	if err != nil {
		return nil, err
	}
	return &Materialization{owner: p, base: db, mat: m}, nil
}

// Apply runs one ordered batch of write ops through incremental
// maintenance and returns the next epoch's Materialization, whose
// Database is a fork of this epoch's with the batch applied. The
// receiver is not modified. A rejected op fails the whole batch with a
// *WriteError and applies nothing.
func (m *Materialization) Apply(ctx context.Context, ops []WriteOp) (*Materialization, *ApplyInfo, error) {
	fork := m.base.Fork()
	iops := make([]incremental.Op, len(ops))
	for i, op := range ops {
		iops[i] = incremental.Op{Retract: op.Retract, Text: op.Text}
	}
	m2, ar, err := m.mat.Apply(ctx, fork.db, iops)
	if err != nil {
		var oe *incremental.OpError
		if errors.As(err, &oe) {
			return nil, nil, &WriteError{Index: oe.Index, Err: oe.Err}
		}
		return nil, nil, err
	}
	return &Materialization{owner: m.owner, base: fork, mat: m2}, &ApplyInfo{
		RetractedPerOp: ar.RetractedPerOp,
		NetInserted:    ar.NetInserted,
		NetDeleted:     ar.NetDeleted,
		DerivedAdded:   ar.DerivedAdded,
		DerivedRemoved: ar.DerivedRemoved,
		Overdeleted:    ar.Overdeleted,
		Rederived:      ar.Rederived,
	}, nil
}

// Database returns the base-fact epoch this materialisation covers.
func (m *Materialization) Database() *Database { return m.base }

// DerivedFacts reports the number of derived tuples materialised.
func (m *Materialization) DerivedFacts() int64 { return m.mat.DerivedFacts() }

// Answers evaluates a query goal ("?- tc(a, X).") directly against the
// materialised relations — no fixpoint, no rewriting; cost is one scan
// or index probe of the goal's predicate. Rows are rendered exactly as
// Eval renders them, in the same canonical order.
func (m *Materialization) Answers(goal string) ([][]string, error) {
	q, err := parser.ParseQuery(m.owner.bank, goal)
	if err != nil {
		return nil, err
	}
	tuples := m.mat.Answers(q)
	rows := make([][]string, len(tuples))
	for i, t := range tuples {
		rows[i] = m.owner.formatTuple(t)
	}
	return rows, nil
}

// Verify rebuilds the materialisation from scratch and diffs every
// derived tuple and derivation count against the maintained state. It
// is the maintenance oracle used by the chaos suites; cost is a full
// re-evaluation.
func (m *Materialization) Verify(ctx context.Context) error {
	return m.mat.Verify(ctx)
}
