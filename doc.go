// Package lincount is a deductive-database engine specialized in the
// optimized evaluation of queries with bound arguments over linear Datalog
// programs. It implements the methods of
//
//	S. Greco and C. Zaniolo,
//	"Optimization of Linear Logic Programs Using Counting Methods",
//	EDBT 1992,
//
// namely the extended counting rewriting for programs with multiple linear
// recursive rules and shared variables (Algorithm 1), a pointer-based
// counting runtime that remains safe on cyclic databases (Algorithm 2), and
// the reduction of rewritten programs that recovers the specialized
// optimizations for right-, left- and mixed-linear programs (Algorithm 3) —
// together with the classical counting method and the magic-set method as
// baselines, all on top of a semi-naive bottom-up Datalog engine with
// stratified negation.
//
// # Quick start
//
//	p, err := lincount.ParseProgram(`
//	    sg(X,Y) :- flat(X,Y).
//	    sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
//	`)
//	db := lincount.NewDatabase(p)
//	err = db.LoadFacts("up(a,b). flat(b,b1). down(b1,c).")
//	res, err := lincount.Eval(p, db, "?- sg(a,Y).", lincount.Auto)
//	for _, a := range res.Answers {
//	    fmt.Println(a) // [a c]
//	}
//
// Every strategy returns the same answers (Theorems 1–3 of the paper); they
// differ in the amount of work done, which Result.Stats reports.
package lincount
