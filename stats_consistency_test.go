package lincount

import (
	"strings"
	"testing"
)

// engineEvaluated reports whether a strategy runs through the bottom-up
// rule engine (and therefore fills the engine counter family:
// Inferences, DerivedFacts, Iterations).
func engineEvaluated(s Strategy) bool {
	switch s {
	case Naive, SemiNaive, Magic, MagicSup, MagicCounting, CountingClassic, Counting, CountingReduced:
		return true
	}
	return false
}

// TestStatsConsistencyAcrossStrategies asserts, for every concrete
// strategy on the seed same-generation program, that the counters that
// apply to the strategy are non-zero and self-consistent, and that an
// evaluation with a Tracer attached returns byte-identical answers to one
// without.
func TestStatsConsistencyAcrossStrategies(t *testing.T) {
	p := MustParseProgram(sgSrc)
	q := "?- sg(a,Y)."
	for _, s := range Strategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			db := NewDatabase(p)
			if err := db.LoadFacts(sgFacts); err != nil {
				t.Fatal(err)
			}
			plain := mustEval(t, p, db, q, s)
			st := plain.Stats
			if len(plain.Answers) == 0 {
				t.Fatal("no answers")
			}
			if st.ArenaValues == 0 {
				t.Errorf("ArenaValues = 0, want > 0 (stats %+v)", st)
			}
			if st.AnswerTuples == 0 {
				t.Errorf("AnswerTuples = 0, want > 0 (stats %+v)", st)
			}
			if engineEvaluated(s) {
				if st.Inferences == 0 || st.DerivedFacts == 0 || st.Iterations == 0 {
					t.Errorf("engine counters zero: %+v", st)
				}
				if int64(st.AnswerTuples) > st.DerivedFacts {
					t.Errorf("AnswerTuples (%d) > DerivedFacts (%d)", st.AnswerTuples, st.DerivedFacts)
				}
			}
			switch s {
			case CountingRuntime:
				if st.Probes == 0 || st.CountingNodes == 0 {
					t.Errorf("counting-runtime counters zero: %+v", st)
				}
			case QSQ:
				if st.Probes == 0 {
					t.Errorf("qsq Probes = 0: %+v", st)
				}
			case CountingClassic, Counting, CountingReduced:
				if st.CountingNodes == 0 {
					t.Errorf("CountingNodes = 0 for %s: %+v", s, st)
				}
			}

			// A traced run must not change the answers in any way.
			db2 := NewDatabase(p)
			if err := db2.LoadFacts(sgFacts); err != nil {
				t.Fatal(err)
			}
			tr := NewTracer()
			traced, err := Eval(p, db2, q, s, WithTracer(tr))
			if err != nil {
				t.Fatalf("traced Eval(%v): %v", s, err)
			}
			if got, want := rows(traced), rows(plain); got != want {
				t.Errorf("traced answers differ:\n  traced:   %s\n  untraced: %s", got, want)
			}
			if len(tr.SpanNames()) == 0 {
				t.Error("tracer recorded no spans")
			}
			if engineEvaluated(s) {
				if len(traced.RuleProfile) == 0 {
					t.Fatalf("no RuleProfile for engine strategy %s", s)
				}
				var inf int64
				runs := 0
				for _, rp := range traced.RuleProfile {
					if rp.Rule == "" {
						t.Error("empty rule text in profile")
					}
					inf += rp.Inferences
					runs += rp.Runs
				}
				if runs == 0 {
					t.Error("rule profile recorded no runs")
				}
				if inf != traced.Stats.Inferences {
					t.Errorf("profile inferences %d != Stats.Inferences %d", inf, traced.Stats.Inferences)
				}
			} else if len(traced.RuleProfile) != 0 {
				t.Errorf("unexpected RuleProfile for %s", s)
			}
		})
	}
}

// TestTracerCapturesStrategyPhases asserts the trace contains the spans
// documented in docs/INTERNALS.md for each evaluation family.
func TestTracerCapturesStrategyPhases(t *testing.T) {
	cases := []struct {
		strategy Strategy
		want     []string
	}{
		{SemiNaive, []string{"eval", "parse", "iteration", "answers"}},
		{Magic, []string{"eval", "adorn", "rewrite:magic", "iteration"}},
		{CountingReduced, []string{"eval", "rewrite:counting-reduced", "iteration"}},
		{CountingRuntime, []string{"eval", "counting.build", "counting.answer"}},
		{QSQ, []string{"eval", "qsq.pass"}},
	}
	p := MustParseProgram(sgSrc)
	for _, c := range cases {
		t.Run(c.strategy.String(), func(t *testing.T) {
			db := NewDatabase(p)
			if err := db.LoadFacts(sgFacts); err != nil {
				t.Fatal(err)
			}
			tr := NewTracer()
			if _, err := Eval(p, db, "?- sg(a,Y).", c.strategy, WithTracer(tr)); err != nil {
				t.Fatal(err)
			}
			names := strings.Join(tr.SpanNames(), "\n")
			for _, w := range c.want {
				if !strings.Contains(names, w) {
					t.Errorf("trace missing span %q; have:\n%s", w, names)
				}
			}
		})
	}
}
