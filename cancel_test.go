package lincount

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// Divergent workloads, one flavor per strategy family. The succ-counter
// program is unsafe on any database (each round manufactures a new
// number); the cyclic sg data defeats the counting rewritings, whose
// level arguments grow forever around the up-cycle; the unbounded
// right-recursion diverges the pointer runtime's counting phase.
const (
	succCounterSrc = `
num(0).
num(N) :- num(M), M < 100000000000, succ(M,N).
`
	cyclicSGSrc = `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`
	cyclicSGFacts = "up(a,b). up(b,c). up(c,a). flat(b,f). down(f,g). down(g,h)."

	rightRecSrc = `
n(X) :- stop(X).
n(X) :- succ(X,X1), n(X1).
`
	rightRecFacts = "stop(99999999999)."
)

// divergentCase is one strategy paired with a workload on which it runs
// forever absent a deadline.
type divergentCase struct {
	name  string
	src   string
	facts string
	query string
	s     Strategy
	opts  []Option
}

func divergentCases() []divergentCase {
	return []divergentCase{
		{"naive", succCounterSrc, "", "?- num(X).", Naive, nil},
		{"semi-naive", succCounterSrc, "", "?- num(X).", SemiNaive, nil},
		{"parallel", succCounterSrc, "", "?- num(X).", SemiNaive, []Option{WithParallel()}},
		{"magic", succCounterSrc, "", "?- num(5).", Magic, nil},
		{"magic-sup", succCounterSrc, "", "?- num(5).", MagicSup, nil},
		{"magic-counting", succCounterSrc, "", "?- num(5).", MagicCounting, nil},
		{"qsq", succCounterSrc, "", "?- num(5).", QSQ, nil},
		{"counting-classic", cyclicSGSrc, cyclicSGFacts, "?- sg(a,Y).", CountingClassic, nil},
		{"counting", cyclicSGSrc, cyclicSGFacts, "?- sg(a,Y).", Counting, nil},
		{"counting-reduced", cyclicSGSrc, cyclicSGFacts, "?- sg(a,Y).", CountingReduced, nil},
		{"counting-runtime", rightRecSrc, rightRecFacts, "?- n(0).", CountingRuntime, nil},
	}
}

func (c divergentCase) load(t *testing.T) (*Program, *Database) {
	t.Helper()
	p, err := ParseProgram(c.src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := NewDatabase(p)
	if c.facts != "" {
		if err := db.LoadFacts(c.facts); err != nil {
			t.Fatalf("facts: %v", err)
		}
	}
	return p, db
}

// TestEvalContextPreCancelled: a context cancelled before the call returns
// promptly with an error matching context.Canceled, for every strategy.
func TestEvalContextPreCancelled(t *testing.T) {
	for _, c := range divergentCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, db := c.load(t)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			_, err := EvalContext(ctx, p, db, c.query, c.s, c.opts...)
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("pre-cancelled eval took %v", elapsed)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CanceledError", err)
			}
		})
	}
}

// TestEvalDeadlineInterruptsDivergence: the acceptance criterion — a
// divergent query with a 50ms deadline returns a DeadlineExceeded-wrapping
// error well under a second, for every strategy.
func TestEvalDeadlineInterruptsDivergence(t *testing.T) {
	for _, c := range divergentCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, db := c.load(t)
			start := time.Now()
			_, err := Eval(p, db, c.query, c.s,
				append(c.opts, WithMaxDuration(50*time.Millisecond))...)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("divergent query returned without error")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			// "Well under a second": the cooperative checks poll every
			// iteration and every 1024 inferences, so overshoot past the
			// 50ms deadline is bounded by one check interval.
			if elapsed > time.Second {
				t.Fatalf("deadline overshoot: took %v for a 50ms deadline", elapsed)
			}
		})
	}
}

// TestEvalContextMidFlightCancel: cancelling from another goroutine while
// the fixpoint runs stops it promptly.
func TestEvalContextMidFlightCancel(t *testing.T) {
	p, err := ParseProgram(succCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(p)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = EvalContext(ctx, p, db, "?- num(X).", SemiNaive)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel took effect after %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelNoGoroutineLeak: a parallel evaluation that is cancelled
// mid-flight drains its stratum workers before returning.
func TestParallelNoGoroutineLeak(t *testing.T) {
	// Two independent divergent strata so both parallel workers are busy
	// when the deadline lands.
	src := `
a(0).
a(N) :- a(M), M < 100000000000, succ(M,N).
b(0).
b(N) :- b(M), M < 100000000000, succ(M,N).
goal(X,Y) :- a(X), b(Y).
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		db := NewDatabase(p)
		_, err := Eval(p, db, "?- goal(X,Y).", SemiNaive,
			WithParallel(), WithMaxDuration(30*time.Millisecond))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run %d: err = %v, want context.DeadlineExceeded", i, err)
		}
	}
	// The workers are joined before Eval returns, so only scheduler noise
	// should remain; poll briefly to let exiting goroutines unwind.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelGlobalFactBudget: under WithParallel the derived-fact cap is
// global across concurrently evaluated strata, and the trip surfaces as a
// structured ResourceLimitError.
func TestParallelGlobalFactBudget(t *testing.T) {
	// Two independent strata, each deriving 100 facts; a global cap of 60
	// must trip even though either stratum alone stays under it.
	src := `
a(X) :- base(X).
a2(X) :- a(X).
b(X) :- base(X).
b2(X) :- b(X).
goal(X,Y) :- a2(X), b2(Y).
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(p)
	for i := 0; i < 50; i++ {
		if err := db.Assert("base", i); err != nil {
			t.Fatal(err)
		}
	}
	_, err = Eval(p, db, "?- goal(X,Y).", SemiNaive, WithParallel(), WithMaxDerivedFacts(60))
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("err = %v, want ErrResourceLimit", err)
	}
	var rle *ResourceLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want *ResourceLimitError", err)
	}
	if rle.Kind != LimitFacts {
		t.Errorf("Kind = %q, want %q", rle.Kind, LimitFacts)
	}
	if rle.Component != "engine" {
		t.Errorf("Component = %q, want engine", rle.Component)
	}
}

// TestResourceLimitErrorStructure: the legacy budget errors now carry
// structured details and still match the old sentinels.
func TestResourceLimitErrorStructure(t *testing.T) {
	p, err := ParseProgram(succCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Eval(p, NewDatabase(p), "?- num(X).", SemiNaive, WithMaxIterations(5))
	var rle *ResourceLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want *ResourceLimitError", err)
	}
	if rle.Kind != LimitIterations || rle.Limit != 5 {
		t.Errorf("got Kind=%q Limit=%d, want %q/5", rle.Kind, rle.Limit, LimitIterations)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("budget error must not impersonate a cancellation: %v", err)
	}

	// QSQ's pass budget trips the same structured error (LimitPasses).
	_, err = Eval(p, NewDatabase(p), "?- num(5).", QSQ, WithMaxIterations(3))
	if !errors.As(err, &rle) {
		t.Fatalf("qsq err = %v, want *ResourceLimitError", err)
	}
	if rle.Kind != LimitPasses || rle.Component != "topdown" {
		t.Errorf("qsq got Kind=%q Component=%q, want %q/topdown", rle.Kind, rle.Component, LimitPasses)
	}
}

// TestWithMaxDurationZeroIsNoLimit: a zero duration leaves the evaluation
// ungoverned and a finite query still succeeds under a generous deadline.
func TestWithMaxDurationZeroIsNoLimit(t *testing.T) {
	p, err := ParseProgram(cyclicSGSrc)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(p)
	if err := db.LoadFacts("up(a,b). flat(b,c). down(c,d)."); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{nil, {WithMaxDuration(time.Minute)}} {
		res, err := Eval(p, db, "?- sg(a,Y).", SemiNaive, opts...)
		if err != nil {
			t.Fatalf("opts %v: %v", opts, err)
		}
		if len(res.Answers) != 1 {
			t.Fatalf("opts %v: answers = %v", opts, res.Answers)
		}
	}
}
