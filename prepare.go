package lincount

import (
	"context"
	"fmt"

	"lincount/internal/ast"
	"lincount/internal/parser"
)

// PreparedQuery is a query compiled ahead of time against one Program:
// the query text is parsed once at Prepare time, and the compilation
// pipeline (adornment, linearity analysis, rewriting) runs at most once
// per strategy through the program's plan cache — every Eval after the
// first reuses the compiled plan and pays only for execution.
//
// A PreparedQuery is immutable and safe for concurrent use: any number
// of goroutines may call Eval on the same prepared query against the
// same or different databases.
type PreparedQuery struct {
	p        *Program
	q        ast.Query
	strategy Strategy
	opts     []Option
}

// Prepare parses and compiles query against p ahead of evaluation.
// opts are captured into the prepared query and applied to every Eval
// (Eval-time options append after them, so they can override budgets or
// attach per-call observers).
//
// For an explicit strategy the compilation pipeline runs eagerly, so
// Prepare surfaces inapplicability errors (a non-linear program prepared
// with a counting strategy, a query with no bound arguments prepared
// with Magic) before any database work. For Auto, planning is
// data-dependent — the planner ranks candidates using the database's
// relation cardinalities — so Prepare only parses and the plan is chosen
// (and cached) at Eval time.
func Prepare(p *Program, query string, strategy Strategy, opts ...Option) (*PreparedQuery, error) {
	cfg := evalConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	psp := cfg.tracer.Begin("eval", "parse")
	q, err := parser.ParseQuery(p.bank, query)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("lincount: parsing query: %w", err)
	}
	pq := &PreparedQuery{p: p, q: q, strategy: strategy, opts: opts}
	if strategy != Auto {
		cfg.queryText = ast.FormatQuery(p.bank, q)
		cfg.optsFP = cfg.fingerprint()
		cfg.shared = p.sharedFor(cfg.queryText, q, cfg.noCache)
		if _, _, _, err := p.planFor(strategy, cfg); err != nil {
			return nil, err
		}
	}
	return pq, nil
}

// Program returns the program the query was prepared against.
func (pq *PreparedQuery) Program() *Program { return pq.p }

// Text returns the normalized query text.
func (pq *PreparedQuery) Text() string { return ast.FormatQuery(pq.p.bank, pq.q) }

// Strategy returns the strategy the query was prepared with.
func (pq *PreparedQuery) Strategy() Strategy { return pq.strategy }

// Eval evaluates the prepared query against db. Equivalent to Eval with
// the prepared query's text, strategy and options, minus the parse and
// (after the first call) the compilation.
func (pq *PreparedQuery) Eval(db *Database, extra ...Option) (*Result, error) {
	return pq.EvalContext(context.Background(), db, extra...)
}

// EvalContext is Eval governed by a context; see EvalContext (package
// level) for the cancellation contract.
func (pq *PreparedQuery) EvalContext(ctx context.Context, db *Database, extra ...Option) (*Result, error) {
	cfg := evalConfig{}
	for _, o := range pq.opts {
		o(&cfg)
	}
	for _, o := range extra {
		o(&cfg)
	}
	esp := cfg.tracer.Begin("eval", "eval")
	defer esp.End()
	return evalCore(ctx, pq.p, db, pq.q, pq.strategy, cfg)
}
