package lincount

import (
	"strings"
	"testing"

	"lincount/internal/adorn"
	"lincount/internal/counting"
	"lincount/internal/parser"
)

// The magic-counting hybrid (reference [16]) is data-dependent: it must
// pick the reduced counting program on acyclic data and magic sets on
// cyclic data, returning the same answers either way.

func TestMagicCountingPicksCountingOnAcyclicData(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(sgFacts); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- sg(a,Y).", MagicCounting)
	if res.Strategy != MagicCounting {
		t.Errorf("strategy = %v", res.Strategy)
	}
	if !strings.Contains(res.Rewritten, "c_sg_bf") {
		t.Errorf("expected counting rewrite on acyclic data:\n%s", res.Rewritten)
	}
	want := rows(mustEval(t, p, db, "?- sg(a,Y).", SemiNaive))
	if rows(res) != want {
		t.Errorf("answers = %q, want %q", rows(res), want)
	}
}

func TestMagicCountingFallsBackOnCyclicData(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(`
up(a,b). up(b,c). up(c,a).
flat(b,f). down(f,g). down(g,h). down(h,i).
`); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- sg(a,Y).", MagicCounting)
	if !strings.Contains(res.Rewritten, "m_sg_bf") {
		t.Errorf("expected magic rewrite on cyclic data:\n%s", res.Rewritten)
	}
	want := rows(mustEval(t, p, db, "?- sg(a,Y).", SemiNaive))
	if rows(res) != want {
		t.Errorf("answers = %q, want %q", rows(res), want)
	}
}

func TestMagicCountingNonLinearFallsBackToMagic(t *testing.T) {
	p := MustParseProgram(`
tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`)
	db := NewDatabase(p)
	if err := db.LoadFacts("e(a,b). e(b,c)."); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- tc(a,Y).", MagicCounting)
	if rows(res) != "a,b | a,c" {
		t.Errorf("answers = %q", rows(res))
	}
}

func TestMagicCountingRewriteIsDataDependent(t *testing.T) {
	p := MustParseProgram(sgSrc)
	if _, _, err := Rewrite(p, "?- sg(a,Y).", MagicCounting); err == nil {
		t.Error("Rewrite(MagicCounting) should explain it is data-dependent")
	}
}

func TestProbeLeftGraph(t *testing.T) {
	p := MustParseProgram(sgSrc)
	parse := func(facts string) (*counting.Analysis, *Database) {
		db := NewDatabase(p)
		if err := db.LoadFacts(facts); err != nil {
			t.Fatal(err)
		}
		q, err := parser.ParseQuery(p.bank, "?- sg(a,Y).")
		if err != nil {
			t.Fatal(err)
		}
		a, err := adorn.Adorn(p.program, q)
		if err != nil {
			t.Fatal(err)
		}
		an, err := counting.Analyze(a)
		if err != nil {
			t.Fatal(err)
		}
		return an, db
	}

	an, db := parse("up(a,b). up(b,c).")
	probe, err := counting.ProbeLeftGraph(an, db.db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Acyclic || probe.Nodes != 3 || probe.BackArcs != 0 {
		t.Errorf("acyclic probe = %+v", probe)
	}

	an, db = parse("up(a,b). up(b,a).")
	probe, err = counting.ProbeLeftGraph(an, db.db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Acyclic || probe.BackArcs != 1 {
		t.Errorf("cyclic probe = %+v", probe)
	}

	// A cycle not reachable from the binding must not trip the probe.
	an, db = parse("up(a,b). up(z,w). up(w,z).")
	probe, err = counting.ProbeLeftGraph(an, db.db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Acyclic {
		t.Errorf("unreachable cycle tripped the probe: %+v", probe)
	}
}
