package lincount_test

// BenchmarkP15_ServerQPS: the query server's throughput and degradation
// profile under concurrent load. For each offered concurrency level, N
// client goroutines issue queries (with a 5% write mix) directly against
// server.Query/server.Write — no HTTP, so the numbers isolate the
// admission path, the snapshot load, and the prepared evaluation. The
// reported metrics are the robustness story, not just ns/op: shed rate
// (the fraction of requests refused by admission control) and p99
// latency of the admitted ones. See EXPERIMENTS.md § P15.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lincount"
	"lincount/internal/server"
	"lincount/internal/workload"
)

func BenchmarkP15_ServerQPS(b *testing.B) {
	p, err := lincount.ParseProgram(workload.SGProgram)
	if err != nil {
		b.Fatal(err)
	}
	for _, clients := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			db := lincount.NewDatabase(p)
			if err := db.LoadFacts(workload.Cylinder(3, 2, 2)); err != nil {
				b.Fatal(err)
			}
			s, err := server.New(server.Config{
				Program:       p,
				DB:            db,
				MaxConcurrent: 8,
				MaxQueue:      8,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			query := fmt.Sprintf("?- sg(%s,Y).", workload.CylinderQuery)

			// Warm the prepared-query and plan caches outside the timer.
			if _, err := s.Query(ctx, server.QueryRequest{Query: query}); err != nil {
				b.Fatal(err)
			}

			var (
				shed      atomic.Int64
				writeSeq  atomic.Int64
				latMu     sync.Mutex
				latencies []time.Duration
			)
			work := make(chan int, b.N)
			for i := 0; i < b.N; i++ {
				work <- i
			}
			close(work)

			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range work {
						start := time.Now()
						var err error
						if i%20 == 19 { // 5% write mix
							n := writeSeq.Add(1)
							_, err = s.Write(ctx, server.WriteRequest{
								Assert: fmt.Sprintf("flat(bx%d,by%d).", n, n),
							})
						} else {
							_, err = s.Query(ctx, server.QueryRequest{Query: query})
						}
						if err != nil {
							if errors.Is(err, server.ErrBusy) {
								shed.Add(1)
								continue
							}
							b.Error(err)
							return
						}
						d := time.Since(start)
						latMu.Lock()
						latencies = append(latencies, d)
						latMu.Unlock()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()

			b.ReportMetric(float64(shed.Load())/float64(b.N), "shed-rate")
			if len(latencies) > 0 {
				sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
				p99 := latencies[len(latencies)*99/100]
				if len(latencies)*99/100 >= len(latencies) {
					p99 = latencies[len(latencies)-1]
				}
				b.ReportMetric(float64(p99.Microseconds()), "p99-us")
			}
		})
	}
}
