package lincount

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lincount/internal/counting"
)

// Random-program equivalence fuzzing: generate random *linear programs*
// (not just random data) from the grammar the paper covers — general
// rules, shared variables, bound head variables in the right part,
// right-linear and left-linear rules, one or two recursive predicates —
// plus random databases, and check that every applicable strategy agrees
// with semi-naive evaluation. This is the strongest executable form of
// Theorems 1–3.

type programGen struct {
	r *rand.Rand
}

// rule shapes; weights tuned so every feature appears often.
const (
	shapeGeneral = iota
	shapeShared
	shapeBoundRight
	shapeRightLinear
	shapeLeftLinear
	shapeChainedLeft
	shapeMutual
)

func (g *programGen) genProgram(k int) string {
	var sb strings.Builder
	sb.WriteString("p(X,Y) :- flat(X,Y).\n")
	mutual := false
	for i := 1; i <= k; i++ {
		switch g.r.Intn(7) {
		case shapeGeneral:
			fmt.Fprintf(&sb, "p(X,Y) :- up%d(X,X1), p(X1,Y1), down%d(Y1,Y).\n", i, i)
		case shapeShared:
			fmt.Fprintf(&sb, "p(X,Y) :- up%d(X,X1,W), p(X1,Y1), down%d(Y1,Y,W).\n", i, i)
		case shapeBoundRight:
			fmt.Fprintf(&sb, "p(X,Y) :- up%d(X,X1), p(X1,Y1), down%d(Y1,Y,X).\n", i, i)
		case shapeRightLinear:
			fmt.Fprintf(&sb, "p(X,Y) :- up%d(X,X1), p(X1,Y).\n", i)
		case shapeLeftLinear:
			fmt.Fprintf(&sb, "p(X,Y) :- p(X,Y1), down%d(Y1,Y).\n", i)
		case shapeChainedLeft:
			// Two-literal left part binding X1 transitively.
			fmt.Fprintf(&sb, "p(X,Y) :- up%d(X,M), hop%d(M,X1), p(X1,Y1), down%d(Y1,Y).\n", i, i, i)
		default:
			// One mutual-recursion pair per program is enough.
			if mutual {
				fmt.Fprintf(&sb, "p(X,Y) :- up%d(X,X1), p(X1,Y1), down%d(Y1,Y).\n", i, i)
				continue
			}
			mutual = true
			fmt.Fprintf(&sb, "p(X,Y) :- up%d(X,X1), aux(X1,Y1), down%d(Y1,Y).\n", i, i)
			fmt.Fprintf(&sb, "aux(X,Y) :- hop%d(X,X1), p(X1,Y1), down%d(Y1,Y).\n", i, i)
		}
	}
	return sb.String()
}

// genFacts produces data for every relation the program may mention. The
// relations are deliberately overlapping so different rules interact.
func (g *programGen) genFacts(src string, nodes int, cyclic bool) string {
	var sb strings.Builder
	arc := func() (int, int) {
		a, b := g.r.Intn(nodes), g.r.Intn(nodes)
		if !cyclic && a >= b {
			return -1, -1
		}
		return a, b
	}
	for i := 1; i <= 4; i++ {
		if !strings.Contains(src, fmt.Sprintf("up%d(", i)) &&
			!strings.Contains(src, fmt.Sprintf("down%d(", i)) {
			continue
		}
		for n := 0; n < 2+g.r.Intn(8); n++ {
			if a, b := arc(); a >= 0 {
				if strings.Contains(src, fmt.Sprintf("up%d(X,X1,W)", i)) {
					fmt.Fprintf(&sb, "up%d(n%d,n%d,w%d). ", i, a, b, g.r.Intn(2))
				} else if strings.Contains(src, fmt.Sprintf("up%d(", i)) {
					fmt.Fprintf(&sb, "up%d(n%d,n%d). ", i, a, b)
				}
			}
			if strings.Contains(src, fmt.Sprintf("hop%d(", i)) {
				if a, b := arc(); a >= 0 {
					fmt.Fprintf(&sb, "hop%d(n%d,n%d). ", i, a, b)
				}
			}
			a, b := g.r.Intn(nodes), g.r.Intn(nodes)
			switch {
			case strings.Contains(src, fmt.Sprintf("down%d(Y1,Y,W)", i)):
				fmt.Fprintf(&sb, "down%d(m%d,m%d,w%d). ", i, a, b, g.r.Intn(2))
			case strings.Contains(src, fmt.Sprintf("down%d(Y1,Y,X)", i)):
				fmt.Fprintf(&sb, "down%d(m%d,m%d,n%d). ", i, a, b, g.r.Intn(nodes))
			case strings.Contains(src, fmt.Sprintf("down%d(", i)):
				fmt.Fprintf(&sb, "down%d(m%d,m%d). ", i, a, b)
			}
		}
	}
	for i := 0; i < nodes; i++ {
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, "flat(n%d,m%d). ", i, g.r.Intn(nodes))
		}
	}
	return sb.String()
}

func TestRandomLinearProgramEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz-style test")
	}
	const seeds = 60
	for seed := 0; seed < seeds; seed++ {
		g := &programGen{r: rand.New(rand.NewSource(int64(seed)))}
		src := g.genProgram(1 + g.r.Intn(3))
		cyclic := g.r.Intn(2) == 1
		facts := g.genFacts(src, 7, cyclic)

		p, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		db := NewDatabase(p)
		if err := db.LoadFacts(facts); err != nil {
			t.Fatalf("seed %d: facts: %v", seed, err)
		}
		const goal = "?- p(n0,Y)."
		base, err := Eval(p, db, goal, SemiNaive)
		if err != nil {
			t.Fatalf("seed %d: semi-naive: %v", seed, err)
		}
		want := rows(base)

		strategies := []Strategy{Naive, Magic, MagicSup, MagicCounting, QSQ, CountingRuntime, Auto}
		if !cyclic {
			strategies = append(strategies, Counting, CountingReduced, CountingClassic)
		}
		for _, s := range strategies {
			res, err := Eval(p, db, goal, s,
				WithMaxIterations(50_000), WithMaxDerivedFacts(2_000_000))
			if err != nil {
				if errors.Is(err, counting.ErrNotApplicable) {
					continue // e.g. classic on multi-rule programs
				}
				t.Fatalf("seed %d: %v: %v\nprogram:\n%s\nfacts: %s", seed, s, err, src, facts)
			}
			if got := rows(res); got != want {
				t.Errorf("seed %d: %v answers %q, want %q\nprogram:\n%s\nfacts: %s",
					seed, s, got, want, src, facts)
			}
		}
	}
}

// TestRandomNonlinearMagicEquivalence fuzzes the magic rewritings over
// non-linear programs (outside the counting class): quadratic closure,
// rules with two derived literals and interleaved prefixes — the shapes
// that stress supplementary magic's prefix materialization.
func TestRandomNonlinearMagicEquivalence(t *testing.T) {
	shapes := []struct{ src, goal string }{
		{`tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).`, "?- tc(n0,Y)."},
		{`r(X,Y) :- e(X,Y).
r(X,Y) :- r(X,Z), b(Z,W), r(W,Y).`, "?- r(n0,Y)."},
		{`p(X,Y) :- e(X,Y).
p(X,Y) :- q(X,Z), q(Z,Y).
q(X,Y) :- b(X,Y).
q(X,Y) :- p(X,Z), e(Z,Y).`, "?- p(n0,Y)."},
	}
	for si, shape := range shapes {
		for seed := 0; seed < 12; seed++ {
			r := rand.New(rand.NewSource(int64(seed*31 + si)))
			var facts strings.Builder
			n := 5 + r.Intn(4)
			for i := 0; i < 2*n; i++ {
				fmt.Fprintf(&facts, "e(n%d,n%d). ", r.Intn(n), r.Intn(n))
				fmt.Fprintf(&facts, "b(n%d,n%d). ", r.Intn(n), r.Intn(n))
			}
			p := MustParseProgram(shape.src)
			db := NewDatabase(p)
			if err := db.LoadFacts(facts.String()); err != nil {
				t.Fatal(err)
			}
			want := rows(mustEval(t, p, db, shape.goal, SemiNaive))
			for _, s := range []Strategy{Magic, MagicSup, MagicCounting, QSQ, Auto} {
				res, err := Eval(p, db, shape.goal, s)
				if err != nil {
					t.Fatalf("shape %d seed %d %v: %v", si, seed, s, err)
				}
				if got := rows(res); got != want {
					t.Errorf("shape %d seed %d: %v answers %q, want %q\nfacts: %s",
						si, seed, s, got, want, facts.String())
				}
			}
		}
	}
}
