package lincount_test

// Planner smoke quartet (make planner-smoke): for each of the four
// representative program shapes — acyclic same-generation, cyclic
// same-generation, left-linear and right-linear transitive closure —
// the cost-informed planner must (a) rank the structurally proven
// strategy first with real data statistics loaded, (b) produce a chain
// whose head evaluates successfully, and (c) return the same answers
// as plain semi-naive. This pins the planner to the resolution the old
// analyzer-only resolver guaranteed: statistics sharpen estimates, they
// must never rank an inapplicable or slower-class strategy first.

import (
	"reflect"
	"testing"

	"lincount"
	"lincount/internal/workload"
)

func TestPlannerSmoke(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		facts string
		query string
		want  lincount.Strategy
	}{
		{
			name:  "acyclic-sg",
			src:   workload.SGProgram,
			facts: workload.Cylinder(6, 4, 2),
			query: "?- sg(" + workload.CylinderQuery + ",Y).",
			want:  lincount.CountingRuntime,
		},
		{
			name:  "cyclic-sg",
			src:   workload.SGProgram,
			facts: workload.CyclicChain(32, 8),
			query: "?- sg(u0,Y).",
			want:  lincount.CountingRuntime,
		},
		{
			name: "left-linear",
			src: `tc(X,Y) :- arc(X,Y).
tc(X,Y) :- tc(X,Z), arc(Z,Y).
`,
			facts: workload.Chain(64),
			query: "?- tc(n0,Y).",
			want:  lincount.CountingReduced,
		},
		{
			name:  "right-linear",
			src:   workload.RightLinearProgram,
			facts: workload.RightLinearChain(64, 4),
			query: "?- p(u0,Y).",
			want:  lincount.CountingReduced,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := lincount.ParseProgram(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			db := lincount.NewDatabase(p)
			if err := db.LoadFacts(tc.facts); err != nil {
				t.Fatal(err)
			}
			choices, err := lincount.PlannerChoices(p, db, tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if len(choices) == 0 {
				t.Fatal("planner returned no candidates")
			}
			if choices[0].Strategy != tc.want {
				for _, c := range choices {
					t.Logf("  cost %.0f  %s  (%s)", c.Cost, c.Strategy, c.Reason)
				}
				t.Fatalf("planner ranked %s first, want %s", choices[0].Strategy, tc.want)
			}
			if choices[len(choices)-1].Strategy != lincount.SemiNaive {
				t.Errorf("chain does not end in semi-naive: %v", choices)
			}
			for i := 1; i < len(choices); i++ {
				if choices[i].Cost < choices[i-1].Cost {
					t.Errorf("chain not sorted by cost: %v before %v", choices[i-1], choices[i])
				}
			}

			res, err := lincount.Eval(p, db, tc.query, lincount.Auto)
			if err != nil {
				t.Fatalf("auto evaluation failed: %v", err)
			}
			if res.Resolved != tc.want {
				t.Errorf("auto resolved to %s, want %s", res.Resolved, tc.want)
			}
			if len(res.Degraded) != 0 {
				t.Errorf("planner's first choice degraded: %+v", res.Degraded)
			}
			ref, err := lincount.Eval(p, db, tc.query, lincount.SemiNaive)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Answers, ref.Answers) {
				t.Errorf("planner choice %s and semi-naive disagree: %d vs %d answers",
					res.Strategy, len(res.Answers), len(ref.Answers))
			}
		})
	}
}
