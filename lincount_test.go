package lincount

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lincount/internal/counting"
	"lincount/internal/engine"
)

const sgSrc = `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
`

const sgFacts = `
up(a,b). up(b,c). up(a,d). up(z,zz).
flat(c,c2). flat(d,d2). flat(b,b2). flat(zz,zy).
down(c2,x1). down(x1,x2). down(b2,x3). down(d2,x4). down(x4,x5).
`

func mustEval(t *testing.T, p *Program, db *Database, q string, s Strategy) *Result {
	t.Helper()
	res, err := Eval(p, db, q, s)
	if err != nil {
		t.Fatalf("Eval(%v): %v", s, err)
	}
	return res
}

func rows(res *Result) string {
	parts := make([]string, len(res.Answers))
	for i, r := range res.Answers {
		parts[i] = strings.Join(r, ",")
	}
	return strings.Join(parts, " | ")
}

func TestAllStrategiesAgreeOnSameGeneration(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(sgFacts); err != nil {
		t.Fatal(err)
	}
	want := rows(mustEval(t, p, db, "?- sg(a,Y).", SemiNaive))
	if want == "" {
		t.Fatal("no answers at all")
	}
	for _, s := range []Strategy{Naive, Magic, MagicSup, QSQ, CountingClassic, Counting, CountingRuntime, Auto} {
		got := rows(mustEval(t, p, db, "?- sg(a,Y).", s))
		if got != want {
			t.Errorf("%v answers = %q, want %q", s, got, want)
		}
	}
}

func TestQSQStrategy(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(sgFacts); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- sg(a,Y).", QSQ)
	if res.Strategy != QSQ {
		t.Errorf("strategy = %v", res.Strategy)
	}
	// The subquery set plays the magic set's role.
	magicRes := mustEval(t, p, db, "?- sg(a,Y).", Magic)
	if res.Stats.CountingNodes != magicRes.Stats.CountingNodes {
		t.Errorf("QSQ input set %d != magic set %d",
			res.Stats.CountingNodes, magicRes.Stats.CountingNodes)
	}
}

func TestAutoResolvesToRuntimeForGeneralLinear(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(sgFacts); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- sg(a,Y).", Auto)
	if res.Strategy != CountingRuntime {
		t.Errorf("auto picked %v, want counting-runtime", res.Strategy)
	}
}

func TestAutoResolvesToReducedForMixedLinear(t *testing.T) {
	p := MustParseProgram(`
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).
`)
	db := NewDatabase(p)
	if err := db.LoadFacts("up(a,b). flat(b,f). down(f,g)."); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- p(a,Y).", Auto)
	if res.Strategy != CountingReduced {
		t.Errorf("auto picked %v, want counting-reduced", res.Strategy)
	}
	if rows(res) != "a,f | a,g" {
		t.Errorf("answers = %q", rows(res))
	}
}

func TestAutoFallsBackToMagicForNonLinear(t *testing.T) {
	p := MustParseProgram(`
tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`)
	db := NewDatabase(p)
	if err := db.LoadFacts("e(a,b). e(b,c)."); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- tc(a,Y).", Auto)
	if res.Strategy != Magic {
		t.Errorf("auto picked %v, want magic", res.Strategy)
	}
	if rows(res) != "a,b | a,c" {
		t.Errorf("answers = %q", rows(res))
	}
}

func TestAutoFallsBackToSemiNaiveWithoutBindings(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts("flat(a,b)."); err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, p, db, "?- sg(X,Y).", Auto)
	if res.Strategy != SemiNaive {
		t.Errorf("auto picked %v, want semi-naive", res.Strategy)
	}
}

func TestCyclicDataStrategies(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(`
up(a,b). up(b,c). up(c,a).
flat(b,f). down(f,g). down(g,h). down(h,i). down(i,j).
`); err != nil {
		t.Fatal(err)
	}
	want := rows(mustEval(t, p, db, "?- sg(a,Y).", SemiNaive))
	got := rows(mustEval(t, p, db, "?- sg(a,Y).", CountingRuntime))
	if got != want {
		t.Errorf("runtime %q, semi-naive %q", got, want)
	}
	// Algorithm 1 programs are unsafe on cyclic data: the budget guard
	// reports it rather than diverging.
	_, err := Eval(p, db, "?- sg(a,Y).", Counting, WithMaxDerivedFacts(5000))
	if !errors.Is(err, engine.ErrBudget) {
		t.Errorf("Counting on cyclic data: err = %v, want ErrBudget", err)
	}
}

func TestExplicitStrategyErrors(t *testing.T) {
	p := MustParseProgram(`
tc(X,Y) :- e(X,Y).
tc(X,Y) :- tc(X,Z), tc(Z,Y).
`)
	db := NewDatabase(p)
	if err := db.LoadFacts("e(a,b)."); err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(p, db, "?- tc(a,Y).", Counting); !errors.Is(err, counting.ErrNotLinear) {
		t.Errorf("Counting on non-linear: %v", err)
	}
	if _, err := Eval(p, db, "?- tc(a,Y).", CountingClassic); err == nil {
		t.Error("CountingClassic on non-linear succeeded")
	}
}

func TestQueryOnBasePredicate(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts("up(a,b). up(a,c)."); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{SemiNaive, Magic, Counting, CountingRuntime, Auto} {
		res := mustEval(t, p, db, "?- up(a,Y).", s)
		if rows(res) != "a,b | a,c" {
			t.Errorf("%v: %q", s, rows(res))
		}
	}
}

func TestAssertAndFactCount(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.Assert("up", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := db.Assert("level", "a", 3); err != nil {
		t.Fatal(err)
	}
	if db.FactCount() != 2 {
		t.Errorf("FactCount = %d", db.FactCount())
	}
	if err := db.Assert("bad", 1.5); err == nil {
		t.Error("float argument accepted")
	}
}

func TestWrongDatabaseRejected(t *testing.T) {
	p1 := MustParseProgram(sgSrc)
	p2 := MustParseProgram(sgSrc)
	db := NewDatabase(p1)
	if _, err := Eval(p2, db, "?- sg(a,Y).", Auto); !errors.Is(err, ErrWrongDatabase) {
		t.Errorf("err = %v", err)
	}
}

func TestRewriteTexts(t *testing.T) {
	p := MustParseProgram(sgSrc)
	for _, c := range []struct {
		s    Strategy
		want string
	}{
		{Magic, "m_sg_bf"},
		{CountingClassic, "succ(I,I1)"},
		{Counting, "[e(r1,[])|L]"},
		{CountingRuntime, "cycle_"},
	} {
		prog, goal, err := Rewrite(p, "?- sg(a,Y).", c.s)
		if err != nil {
			t.Errorf("Rewrite(%v): %v", c.s, err)
			continue
		}
		if !strings.Contains(prog, c.want) {
			t.Errorf("Rewrite(%v) missing %q:\n%s", c.s, c.want, prog)
		}
		if goal == "" {
			t.Errorf("Rewrite(%v) returned empty goal", c.s)
		}
	}
}

func TestStatsReflectMethodDifferences(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	// A deep relevant chain plus two chains unreachable from the query
	// constant: the counting (and magic) strategies skip them, plain
	// bottom-up does not.
	var facts strings.Builder
	const n = 40
	for i := 0; i < n; i++ {
		fmt.Fprintf(&facts, "up(u%d,u%d). down(d%d,d%d). ", i, i+1, i, i+1)
		fmt.Fprintf(&facts, "up(v%d,v%d). up(w%d,w%d). ", i, i+1, i, i+1)
	}
	fmt.Fprintf(&facts, "flat(u%d,d0). flat(v%d,d0). flat(w%d,d0).", n, n, n)
	if err := db.LoadFacts(facts.String()); err != nil {
		t.Fatal(err)
	}
	naive := mustEval(t, p, db, "?- sg(u0,Y).", Naive)
	semi := mustEval(t, p, db, "?- sg(u0,Y).", SemiNaive)
	cnt := mustEval(t, p, db, "?- sg(u0,Y).", Counting)
	if rows(naive) != rows(cnt) || rows(semi) != rows(cnt) {
		t.Fatal("answers disagree")
	}
	if naive.Stats.Inferences <= semi.Stats.Inferences {
		t.Errorf("naive inferences %d <= semi-naive %d", naive.Stats.Inferences, semi.Stats.Inferences)
	}
	if cnt.Stats.DerivedFacts >= semi.Stats.DerivedFacts {
		t.Errorf("counting derived %d >= semi-naive %d (no focusing)",
			cnt.Stats.DerivedFacts, semi.Stats.DerivedFacts)
	}
	if cnt.Stats.CountingNodes == 0 || cnt.Stats.AnswerTuples == 0 {
		t.Errorf("counting stats empty: %+v", cnt.Stats)
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for s := Auto; s <= MagicSup; s++ {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestExplainWitnesses(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(`
up(a,b). up(b,c). flat(c,f0). down(f0,f1). down(f1,f2).
`); err != nil {
		t.Fatal(err)
	}
	exps, err := Explain(p, db, "?- sg(a,Y).")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 1 {
		t.Fatalf("explanations = %d", len(exps))
	}
	if strings.Join(exps[0].Answer, ",") != "a,f2" {
		t.Errorf("answer = %v", exps[0].Answer)
	}
	// exit + 2 undo steps.
	if got := strings.Count(exps[0].Witness, "\n"); got != 3 {
		t.Errorf("witness has %d lines:\n%s", got, exps[0].Witness)
	}
	if !strings.Contains(exps[0].Witness, "exit") {
		t.Errorf("witness:\n%s", exps[0].Witness)
	}
	// Non-linear programs cannot be explained.
	nl := MustParseProgram("tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), tc(Z,Y).\n")
	dbn := NewDatabase(nl)
	if err := dbn.LoadFacts("e(a,b)."); err != nil {
		t.Fatal(err)
	}
	if _, err := Explain(nl, dbn, "?- tc(a,Y)."); err == nil {
		t.Error("Explain accepted a non-linear program")
	}
}

func TestMagicSupStats(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts(sgFacts); err != nil {
		t.Fatal(err)
	}
	plain := mustEval(t, p, db, "?- sg(a,Y).", Magic)
	sup := mustEval(t, p, db, "?- sg(a,Y).", MagicSup)
	if rows(plain) != rows(sup) {
		t.Fatalf("answers differ: %q vs %q", rows(plain), rows(sup))
	}
	if !strings.Contains(sup.Rewritten, "sup_") {
		t.Errorf("magic-sup rewrite has no sup predicates:\n%s", sup.Rewritten)
	}
}

func TestWithTraceStreamsEvents(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts("up(a,b). flat(b,f). down(f,g)."); err != nil {
		t.Fatal(err)
	}
	var components, iterations int
	var lastTotal int64
	_, err := Eval(p, db, "?- sg(a,Y).", Magic, WithTrace(func(e TraceEvent) {
		switch e.Kind {
		case "component":
			components++
			if len(e.Preds) == 0 {
				t.Error("component event without predicates")
			}
		case "iteration":
			iterations++
			if e.TotalFacts < lastTotal {
				t.Error("TotalFacts decreased")
			}
			lastTotal = e.TotalFacts
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if components < 2 || iterations < 2 {
		t.Errorf("components=%d iterations=%d: trace too sparse", components, iterations)
	}
}

func TestWithParallelAgrees(t *testing.T) {
	p := MustParseProgram(`
tcA(X,Y) :- eA(X,Y).
tcA(X,Y) :- eA(X,Z), tcA(Z,Y).
tcB(X,Y) :- eB(X,Y).
tcB(X,Y) :- eB(X,Z), tcB(Z,Y).
both(X,Y) :- tcA(X,Y).
both(X,Y) :- tcB(X,Y).
`)
	db := NewDatabase(p)
	if err := db.LoadFacts("eA(a,b). eA(b,c). eB(a,x). eB(x,y)."); err != nil {
		t.Fatal(err)
	}
	seq := mustEval(t, p, db, "?- both(a,Y).", SemiNaive)
	par, err := Eval(p, db, "?- both(a,Y).", SemiNaive, WithParallel())
	if err != nil {
		t.Fatal(err)
	}
	if rows(seq) != rows(par) {
		t.Errorf("parallel %q, sequential %q", rows(par), rows(seq))
	}
}

func TestPlan(t *testing.T) {
	p := MustParseProgram(sgSrc)
	db := NewDatabase(p)
	if err := db.LoadFacts("up(a,b). flat(b,f). down(f,g)."); err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(p, db, "?- sg(a,Y).", SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "semi-naive fixpoint") || !strings.Contains(plan, "Δsg/") {
		t.Errorf("plan:\n%s", plan)
	}
	cplan, err := Plan(p, db, "?- sg(a,Y).", Counting)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cplan, "c_sg_bf") {
		t.Errorf("counting plan:\n%s", cplan)
	}
	if _, err := Plan(p, db, "?- sg(a,Y).", CountingRuntime); err == nil {
		t.Error("runtime plan should not be available")
	}
	if _, err := Plan(p, db, "?- sg(a,Y).", MagicCounting); err == nil {
		t.Error("magic-counting plan should not be available")
	}
}

func TestProgramLint(t *testing.T) {
	p := MustParseProgram("p(X,Y) :- q(X).\n")
	findings, hasErrors := p.Lint()
	if !hasErrors {
		t.Error("unsafe rule not reported as error")
	}
	joined := strings.Join(findings, "\n")
	if !strings.Contains(joined, "head variable Y") {
		t.Errorf("findings: %v", findings)
	}
	clean := MustParseProgram(sgSrc)
	_, hasErrors = clean.Lint()
	if hasErrors {
		t.Error("clean program reported errors")
	}
}

func TestProgramQueriesCollected(t *testing.T) {
	p := MustParseProgram(sgSrc + "?- sg(a,Y).\n")
	qs := p.Queries()
	if len(qs) != 1 || qs[0] != "?- sg(a,Y)." {
		t.Errorf("Queries = %v", qs)
	}
}

// TestCrossStrategyEquivalenceRandom is the Theorems 1–3 backbone test:
// on pseudo-random acyclic databases, every applicable strategy returns the
// same answers; on cyclic ones, the cyclic-safe strategies agree.
func TestCrossStrategyEquivalenceRandom(t *testing.T) {
	programs := []struct {
		src     string
		goal    string
		classic bool // classical counting applicable
	}{
		{sgSrc, "?- sg(n0,Y).", true},
		{`p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1,W), p(X1,Y1), down(Y1,Y,W).`, "?- p(n0,Y).", false},
		{`p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), p(X1,Y).
p(X,Y) :- p(X,Y1), down(Y1,Y).`, "?- p(n0,Y).", false},
	}
	for pi, pc := range programs {
		for seed := 0; seed < 6; seed++ {
			for _, cyclic := range []bool{false, true} {
				facts := randomFacts(seed, 10, 16, cyclic, pi == 1)
				p := MustParseProgram(pc.src)
				db := NewDatabase(p)
				if err := db.LoadFacts(facts); err != nil {
					t.Fatal(err)
				}
				want := rows(mustEval(t, p, db, pc.goal, SemiNaive))
				strategies := []Strategy{Magic, MagicSup, CountingRuntime, Auto}
				if !cyclic {
					strategies = append(strategies, Counting, CountingReduced)
					if pc.classic {
						strategies = append(strategies, CountingClassic)
					}
				}
				for _, s := range strategies {
					res, err := Eval(p, db, pc.goal, s)
					if err != nil {
						// Explicit strategies may be inapplicable to a
						// given program; that is fine.
						if errors.Is(err, counting.ErrNotApplicable) {
							continue
						}
						t.Fatalf("program %d seed %d cyclic=%v %v: %v", pi, seed, cyclic, s, err)
					}
					if got := rows(res); got != want {
						t.Errorf("program %d seed %d cyclic=%v: %v answers %q, want %q\nfacts: %s",
							pi, seed, cyclic, s, got, want, facts)
					}
				}
			}
		}
	}
}

// randomFacts builds a reproducible random database; when withW is set the
// up/down relations carry a shared third attribute.
func randomFacts(seed, nodes, arcs int, cyclic, withW bool) string {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(n))
	}
	var sb strings.Builder
	for i := 0; i < arcs; i++ {
		a, b := next(nodes), next(nodes)
		if !cyclic {
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
		}
		if withW {
			fmt.Fprintf(&sb, "up(n%d,n%d,w%d). ", a, b, next(3))
		} else {
			fmt.Fprintf(&sb, "up(n%d,n%d). ", a, b)
		}
	}
	for i := 0; i < nodes; i++ {
		if next(2) == 0 {
			fmt.Fprintf(&sb, "flat(n%d,m%d). ", i, next(nodes))
		}
	}
	for i := 0; i < arcs; i++ {
		a, b := next(nodes), next(nodes)
		if withW {
			fmt.Fprintf(&sb, "down(m%d,m%d,w%d). ", a, b, next(3))
		} else {
			fmt.Fprintf(&sb, "down(m%d,m%d). ", a, b)
		}
	}
	return sb.String()
}
