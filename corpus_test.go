package lincount

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lincount/internal/counting"
	"lincount/internal/magic"
	"lincount/internal/topdown"
)

// The golden corpus: every testdata/*.dl file holds one program with one
// embedded query, its expected answers in "% expect:" comments, and an
// optional "% cyclic" marker for databases on which the acyclic-only
// counting strategies legitimately diverge. Every applicable strategy must
// return exactly the expected rows.

type corpusCase struct {
	name   string
	text   string
	expect []string
	cyclic bool
}

func loadCorpus(t *testing.T) []corpusCase {
	t.Helper()
	paths, err := filepath.Glob("testdata/*.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no corpus files found")
	}
	var cases []corpusCase
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c := corpusCase{name: filepath.Base(path), text: string(data)}
		for _, line := range strings.Split(c.text, "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, "% expect:"); ok {
				c.expect = append(c.expect, strings.TrimSpace(rest))
			}
			if line == "% cyclic" {
				c.cyclic = true
			}
		}
		sort.Strings(c.expect)
		if len(c.expect) == 0 {
			t.Fatalf("%s has no %% expect lines", path)
		}
		cases = append(cases, c)
	}
	return cases
}

// notApplicable reports errors that mean "this strategy does not cover the
// program", which the corpus treats as a skip rather than a failure.
func notApplicable(err error) bool {
	return errors.Is(err, counting.ErrNotLinear) ||
		errors.Is(err, counting.ErrNotApplicable) ||
		errors.Is(err, counting.ErrNoBoundArgs) ||
		errors.Is(err, magic.ErrNoBoundArgs) ||
		errors.Is(err, topdown.ErrUnsupported)
}

func TestCorpus(t *testing.T) {
	for _, c := range loadCorpus(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := ParseProgram(c.text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			queries := p.Queries()
			if len(queries) != 1 {
				t.Fatalf("expected exactly one query, got %v", queries)
			}
			db := NewDatabase(p) // facts are embedded in the program

			strategies := append([]Strategy{Auto}, Strategies()...)
			ran := 0
			for _, s := range strategies {
				if c.cyclic && (s == CountingClassic || s == Counting || s == CountingReduced) {
					continue // diverges by design (the paper's point)
				}
				res, err := Eval(p, db, queries[0], s,
					WithMaxIterations(50_000), WithMaxDerivedFacts(2_000_000))
				if err != nil {
					if notApplicable(err) {
						continue
					}
					t.Fatalf("%v: %v", s, err)
				}
				ran++
				var got []string
				for _, row := range res.Answers {
					got = append(got, strings.Join(row, ","))
				}
				sort.Strings(got)
				if strings.Join(got, "|") != strings.Join(c.expect, "|") {
					t.Errorf("%v answers %v, want %v", s, got, c.expect)
				}
			}
			if ran < 3 {
				t.Errorf("only %d strategies were applicable; corpus case too narrow", ran)
			}
		})
	}
}

// TestCorpusAutoNeverErrors: Auto must handle every corpus program.
func TestCorpusAutoNeverErrors(t *testing.T) {
	for _, c := range loadCorpus(t) {
		p, err := ParseProgram(c.text)
		if err != nil {
			t.Fatal(err)
		}
		db := NewDatabase(p)
		if _, err := Eval(p, db, p.Queries()[0], Auto); err != nil {
			t.Errorf("%s: Auto failed: %v", c.name, err)
		}
	}
}
