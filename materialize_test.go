package lincount_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lincount"
)

func matFixture(t testing.TB, rules, facts string) (*lincount.Program, *lincount.Materialization) {
	t.Helper()
	p := lincount.MustParseProgram(rules)
	db := lincount.NewDatabase(p)
	if facts != "" {
		if err := db.LoadFacts(facts); err != nil {
			t.Fatal(err)
		}
	}
	m, err := p.Materialize(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

// matOracle compares materialised answers with a from-scratch Eval of the
// same goal on the materialisation's database epoch.
func matOracle(t testing.TB, p *lincount.Program, m *lincount.Materialization, goal string) {
	t.Helper()
	got, err := m.Answers(goal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lincount.Eval(p, m.Database(), goal, lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res.Answers) {
		t.Fatalf("materialised answers diverge for %s:\n got %v\nwant %v", goal, got, res.Answers)
	}
}

func TestMaterializeAnswersMatchEval(t *testing.T) {
	p, m := matFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c). e(c,a).")
	matOracle(t, p, m, "?- tc(X, Y).")
	matOracle(t, p, m, "?- tc(a, X).")
	if m.DerivedFacts() == 0 {
		t.Fatal("no derived facts materialised")
	}
}

func TestMaterializeApplyChain(t *testing.T) {
	p, m1 := matFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c).")
	m2, info, err := m1.Apply(context.Background(), []lincount.WriteOp{{Text: "e(c,d)."}})
	if err != nil {
		t.Fatal(err)
	}
	if info.NetInserted != 1 || info.DerivedAdded == 0 {
		t.Fatalf("info = %+v, want 1 net insert with derived growth", info)
	}
	m3, info, err := m2.Apply(context.Background(), []lincount.WriteOp{{Retract: true, Text: "e(b,c)."}})
	if err != nil {
		t.Fatal(err)
	}
	if info.NetDeleted != 1 || info.DerivedRemoved == 0 {
		t.Fatalf("info = %+v, want 1 net delete with derived shrinkage", info)
	}
	// Every epoch still answers for itself (MVCC chain).
	for i, m := range []*lincount.Materialization{m1, m2, m3} {
		matOracle(t, p, m, "?- tc(X, Y).")
		if err := m.Verify(context.Background()); err != nil {
			t.Fatalf("epoch %d: %v", i+1, err)
		}
	}
}

func TestMaterializeRetractThenReassert(t *testing.T) {
	p, m := matFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,c).")
	m2, info, err := m.Apply(context.Background(), []lincount.WriteOp{
		{Retract: true, Text: "e(a,b)."},
		{Text: "e(a,b)."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.RetractedPerOp; len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("RetractedPerOp = %v, want [1 0]", got)
	}
	if info.NetInserted != 0 || info.NetDeleted != 0 {
		t.Fatalf("net delta = +%d/-%d, want 0/0", info.NetInserted, info.NetDeleted)
	}
	matOracle(t, p, m2, "?- tc(X, Y).")
}

func TestMaterializeRetractNeverAsserted(t *testing.T) {
	p, m := matFixture(t, "p(X) :- e(X).", "e(a).")
	m2, info, err := m.Apply(context.Background(), []lincount.WriteOp{
		{Retract: true, Text: "e(zz)."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.RetractedPerOp[0] != 0 || info.NetDeleted != 0 {
		t.Fatalf("info = %+v, want a no-op", info)
	}
	matOracle(t, p, m2, "?- p(X).")
}

func TestMaterializeDeleteEmptiesComponent(t *testing.T) {
	p, m := matFixture(t,
		"tc(X,Y) :- e(X,Y).\ntc(X,Y) :- e(X,Z), tc(Z,Y).",
		"e(a,b). e(b,a).")
	m2, _, err := m.Apply(context.Background(), []lincount.WriteOp{
		{Retract: true, Text: "e(a,b). e(b,a)."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.DerivedFacts() != 0 {
		t.Fatalf("DerivedFacts = %d, want 0", m2.DerivedFacts())
	}
	matOracle(t, p, m2, "?- tc(X, Y).")
}

func TestMaterializeDuplicateAsserts(t *testing.T) {
	p, m := matFixture(t, "p(X) :- e(X).", "e(a).")
	// Duplicate asserts of a fact that is also rule-derived: Datalog level
	// stays a single tuple; the derivation count absorbs the base support.
	m2, _, err := m.Apply(context.Background(), []lincount.WriteOp{{Text: "p(a). p(a)."}})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := m2.Answers("?- p(X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("p has %d answers, want 1", len(rows))
	}
	// The tuple survives losing its base copy (rule support remains)...
	m3, _, err := m2.Apply(context.Background(), []lincount.WriteOp{{Retract: true, Text: "p(a)."}})
	if err != nil {
		t.Fatal(err)
	}
	matOracle(t, p, m3, "?- p(X).")
	if rows, _ := m3.Answers("?- p(a)."); len(rows) != 1 {
		t.Fatal("p(a) vanished while still rule-derived")
	}
	if err := m3.Verify(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeNotIncremental(t *testing.T) {
	p := lincount.MustParseProgram("p(X) :- e(X), not q(X).\nq(b).")
	db := lincount.NewDatabase(p)
	if err := db.LoadFacts("e(a). e(b)."); err != nil {
		t.Fatal(err)
	}
	_, err := p.Materialize(context.Background(), db)
	if !errors.Is(err, lincount.ErrNotIncremental) {
		t.Fatalf("Materialize = %v, want ErrNotIncremental", err)
	}
}

func TestMaterializeWriteError(t *testing.T) {
	_, m := matFixture(t, "p(X) :- e(X).", "e(a).")
	_, _, err := m.Apply(context.Background(), []lincount.WriteOp{
		{Text: "e(b)."},
		{Text: "e(b,c)."}, // arity mismatch
	})
	var we *lincount.WriteError
	if !errors.As(err, &we) {
		t.Fatalf("Apply = %v, want *WriteError", err)
	}
	if we.Index != 1 {
		t.Fatalf("WriteError.Index = %d, want 1", we.Index)
	}
}

func TestMaterializeWrongDatabase(t *testing.T) {
	p := lincount.MustParseProgram("p(X) :- e(X).")
	other := lincount.MustParseProgram("p(X) :- e(X).")
	db := lincount.NewDatabase(other)
	if _, err := p.Materialize(context.Background(), db); !errors.Is(err, lincount.ErrWrongDatabase) {
		t.Fatalf("Materialize = %v, want ErrWrongDatabase", err)
	}
}

func TestMaterializeChaosOracle(t *testing.T) {
	p, m := matFixture(t,
		"tc(X,Y) :- e(X,Y).\n"+
			"tc(X,Y) :- e(X,Z), tc(Z,Y).\n"+
			"peer(X,Y) :- tc(X,Y), tc(Y,X).",
		"")
	rng := rand.New(rand.NewSource(7))
	node := func() string { return fmt.Sprintf("n%d", rng.Intn(7)) }
	for b := 0; b < 40; b++ {
		var ops []lincount.WriteOp
		for k := rng.Intn(3) + 1; k > 0; k-- {
			ops = append(ops, lincount.WriteOp{
				Retract: rng.Intn(5) < 2,
				Text:    fmt.Sprintf("e(%s,%s).", node(), node()),
			})
		}
		next, _, err := m.Apply(context.Background(), ops)
		if err != nil {
			t.Fatalf("batch %d %v: %v", b, ops, err)
		}
		m = next
		matOracle(t, p, m, "?- tc(X, Y).")
		matOracle(t, p, m, "?- peer(X, Y).")
	}
	if err := m.Verify(context.Background()); err != nil {
		t.Fatal(err)
	}
}
