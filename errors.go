package lincount

import (
	"fmt"

	"lincount/internal/database"
	"lincount/internal/faultinject"
	"lincount/internal/limits"
)

// ErrResourceLimit is the sentinel every resource-limit error matches:
// errors.Is(err, ErrResourceLimit) reports whether an evaluation stopped
// because a budget tripped (iterations, derived facts, counting tuples
// or QSQ passes), as opposed to failing for a real reason. Budget trips
// are the engine's defense against programs that are unsafe on the given
// data — a counting rewriting over a cyclic database, for instance.
var ErrResourceLimit = limits.ErrResourceLimit

// ResourceLimitError is the structured error a budget trip returns. Kind
// names the budget (LimitIterations, LimitFacts, LimitTuples,
// LimitPasses), Limit/Used quantify it, and Component names the
// evaluator that tripped ("engine", "counting-runtime", "topdown").
// errors.Is(err, ErrResourceLimit) matches it.
type ResourceLimitError = limits.ResourceLimitError

// CanceledError is the structured error a canceled or deadline-expired
// evaluation returns. It unwraps to the context's cause, so
// errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work as expected.
type CanceledError = limits.CanceledError

// Budget kinds carried in ResourceLimitError.Kind.
const (
	// LimitIterations: fixpoint rounds within one recursive component
	// (WithMaxIterations).
	LimitIterations = limits.KindIterations
	// LimitFacts: derived tuples across the evaluation
	// (WithMaxDerivedFacts). Enforced globally even under WithParallel.
	LimitFacts = limits.KindFacts
	// LimitTuples: counting nodes + answer tuples of the counting
	// runtime (WithMaxDerivedFacts for the CountingRuntime strategy).
	LimitTuples = limits.KindTuples
	// LimitPasses: global sweeps of the QSQ evaluator
	// (WithMaxIterations for the QSQ strategy).
	LimitPasses = limits.KindPasses
)

// ErrInjectedFault is the sentinel every injected fault matches:
// errors.Is(err, ErrInjectedFault) reports whether an evaluation failed
// (or was canceled) because the fault-injection harness armed via
// WithFaultInjection fired, as opposed to failing for a real reason.
// Injected faults are retryable for the Auto degradation chain.
var ErrInjectedFault = faultinject.ErrInjected

// SnapshotCorruptError reports a snapshot (see Database.Save) that
// failed its CRC integrity check on load: truncation or bit rot. The
// database is untouched when LoadSnapshot returns it.
type SnapshotCorruptError = database.SnapshotCorruptError

// InternalError reports a panic recovered at the Eval boundary: a bug in
// a rewriting or an evaluator, contained so that one bad query cannot
// crash a process embedding the library. Strategy is the concrete
// strategy that was running and Stack the goroutine stack captured at
// the recovery point — include both when reporting the bug.
type InternalError struct {
	// Strategy is the concrete strategy (Auto already resolved) whose
	// evaluation panicked.
	Strategy Strategy
	// Value is the recovered panic value.
	Value any
	// Stack is the formatted goroutine stack at the recovery point.
	Stack string
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("lincount: internal error evaluating with %s (please report): %v", e.Strategy, e.Value)
}
