package lincount_test

// The chaos suite: seeded fault schedules crossed with every strategy
// and every corpus program, checked by the differential oracle. The
// robustness invariant under test: every run either matches the naive
// oracle exactly or returns a classified error — never a panic, never
// silently wrong answers. This file is an external test package so it
// can exercise the public API exactly as an embedding process would,
// with internal/oracle as the referee.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lincount"
	"lincount/internal/faultinject"
	"lincount/internal/oracle"
	"lincount/internal/server"
	"lincount/internal/wal"
)

type chaosCase struct {
	name   string
	text   string
	cyclic bool
}

// loadChaosCorpus reads testdata/*.dl (the golden corpus; see
// corpus_test.go for the format). The external test package keeps its
// own loader on purpose: it may only consume what a real embedder could.
func loadChaosCorpus(t *testing.T) []chaosCase {
	t.Helper()
	paths, err := filepath.Glob("testdata/*.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no corpus files found")
	}
	var cases []chaosCase
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c := chaosCase{name: filepath.Base(path), text: string(data)}
		for _, line := range strings.Split(c.text, "\n") {
			if strings.TrimSpace(line) == "% cyclic" {
				c.cyclic = true
			}
		}
		cases = append(cases, c)
	}
	return cases
}

// chaosStrategies is the strategy sweep for one case: Auto plus every
// concrete strategy, minus the acyclic-only counting rewritings on
// cyclic databases (where they legitimately diverge — the paper's
// point, not a robustness bug).
func chaosStrategies(cyclic bool) []lincount.Strategy {
	out := []lincount.Strategy{lincount.Auto}
	for _, s := range lincount.Strategies() {
		if cyclic && (s == lincount.CountingClassic || s == lincount.Counting || s == lincount.CountingReduced) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// The fault schedules. Each targets a different layer of the system;
// "storm" sprays every site probabilistically and "latency" checks that
// injected delays perturb timing without perturbing answers.
var chaosSchedules = []struct {
	name string
	spec string
}{
	{"insert-err", "engine.insert=err@40"},
	{"probe-err", "engine.probe=err~0.002"},
	{"iter-cancel", "engine.iter=cancel@3"},
	{"counting-err", "counting.node=err@5,counting.step=err@7"},
	{"topdown-err", "topdown.probe=err@25,topdown.pass=cancel@4"},
	{"storm", "*=err~0.01"},
	{"latency", "engine.iter=delay@2:200us,counting.step=delay@3:50us"},
}

var chaosBudget = []lincount.Option{
	lincount.WithMaxIterations(50_000),
	lincount.WithMaxDerivedFacts(2_000_000),
}

// TestChaosInvariant is the tentpole invariant: corpus × schedules ×
// seeds × strategies, every run matches the oracle or fails with a
// classified error.
func TestChaosInvariant(t *testing.T) {
	seeds := []int64{1, 7}
	for _, c := range loadChaosCorpus(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			p, err := lincount.ParseProgram(c.text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			queries := p.Queries()
			if len(queries) != 1 {
				t.Fatalf("expected exactly one query, got %v", queries)
			}
			db := lincount.NewDatabase(p)
			strategies := chaosStrategies(c.cyclic)
			for _, sched := range chaosSchedules {
				for _, seed := range seeds {
					runOpts := append(append([]lincount.Option{}, chaosBudget...),
						lincount.WithFaultInjection(seed, sched.spec))
					rep, err := oracle.Check(context.Background(), p, db, queries[0],
						strategies, chaosBudget, runOpts)
					if err != nil {
						t.Fatalf("%s seed %d: %v", sched.name, seed, err)
					}
					if !rep.OK() {
						t.Errorf("%s seed %d: invariant violated:\n%s", sched.name, seed, rep)
					}
				}
			}
		})
	}
}

// TestChaosDeterministic: the same seed must reproduce the same outcome
// classes — the property that makes chaos failures debuggable.
func TestChaosDeterministic(t *testing.T) {
	p := lincount.MustParseProgram(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
par(a,b). par(b,c). par(c,d). par(d,e). par(e,f).
?- anc(a, Y).
`)
	db := lincount.NewDatabase(p)
	outcome := func(seed int64) string {
		var parts []string
		for _, s := range []lincount.Strategy{lincount.SemiNaive, lincount.Magic, lincount.QSQ} {
			_, err := lincount.Eval(p, db, "?- anc(a, Y).", s,
				lincount.WithFaultInjection(seed, "*=err~0.05"))
			parts = append(parts, oracle.Classify(err).String())
		}
		return strings.Join(parts, ",")
	}
	first := outcome(42)
	for i := 0; i < 3; i++ {
		if got := outcome(42); got != first {
			t.Fatalf("seed 42 run %d: outcomes %q, want %q", i, got, first)
		}
	}
}

// TestChaosMalformedSpec: a bad schedule must fail before any work.
func TestChaosMalformedSpec(t *testing.T) {
	p := lincount.MustParseProgram(`p(X) :- q(X). q(a). ?- p(X).`)
	db := lincount.NewDatabase(p)
	for _, spec := range []string{"bogus.site=err@1", "engine.insert=explode@1", "engine.insert=err@0", "engine.insert=err~2"} {
		if _, err := lincount.Eval(p, db, "?- p(X).", lincount.Auto,
			lincount.WithFaultInjection(0, spec)); err == nil {
			t.Errorf("spec %q: expected an error", spec)
		}
	}
}

// TestChaosParallelJoin crosses fault schedules with the partitioned
// join pool: a fan graph wide enough to trip the parallel threshold,
// evaluated with WithJoinWorkers under injected engine faults. The
// invariant is the serial one — every run either reproduces the
// fault-free serial answers exactly (order included: partitions merge
// deterministically) or fails with a classified error, never a panic
// and never silently different answers.
func TestChaosParallelJoin(t *testing.T) {
	const src = `
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y), e(Y,Z).
`
	var facts strings.Builder
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&facts, "e(r,x%d).\ne(x%d,y%d).\n", i, i, i)
	}
	p := lincount.MustParseProgram(src + facts.String() + "?- tc(r,Y).\n")
	db := lincount.NewDatabase(p)
	q := "?- tc(r,Y)."

	want, err := lincount.Eval(p, db, q, lincount.SemiNaive, chaosBudget...)
	if err != nil {
		t.Fatal(err)
	}
	schedules := []struct {
		name string
		spec string
	}{
		{"insert-err", "engine.insert=err@5000"},
		{"probe-err", "engine.probe=err~0.0005"},
		{"iter-cancel", "engine.iter=cancel@2"},
		{"storm", "*=err~0.002"},
		{"none", ""},
	}
	for _, sched := range schedules {
		for _, seed := range []int64{1, 7} {
			for _, workers := range []int{2, 4} {
				opts := append(append([]lincount.Option{}, chaosBudget...),
					lincount.WithJoinWorkers(workers))
				if sched.spec != "" {
					opts = append(opts, lincount.WithFaultInjection(seed, sched.spec))
				}
				got, err := lincount.Eval(p, db, q, lincount.SemiNaive, opts...)
				label := fmt.Sprintf("%s seed %d workers %d", sched.name, seed, workers)
				if err != nil {
					switch oracle.Classify(err) {
					case oracle.InjectedFault, oracle.Canceled, oracle.ResourceLimit:
						continue
					default:
						t.Errorf("%s: unclassified error %v", label, err)
						continue
					}
				}
				if len(got.Answers) != len(want.Answers) {
					t.Errorf("%s: %d answers, want %d", label, len(got.Answers), len(want.Answers))
					continue
				}
				for i := range want.Answers {
					if strings.Join(got.Answers[i], ",") != strings.Join(want.Answers[i], ",") {
						t.Errorf("%s: answer %d = %v, want %v (parallel merge order diverged)",
							label, i, got.Answers[i], want.Answers[i])
						break
					}
				}
			}
		}
	}
}

// mutualProgram is a two-predicate linear clique: Auto resolves it to
// the counting runtime (the general-linear class), which makes it the
// vehicle for the degradation tests below.
const mutualProgram = `
p(X,Y) :- flat(X,Y).
p(X,Y) :- up(X,X1), q(X1,Y1), down(Y1,Y).
q(X,Y) :- over(X,X1), p(X1,Y1), under(Y1,Y).
up(a,b). over(b,c).
flat(c,c2). flat(a,a2).
under(c2,u). down(u,v).
?- p(a,Y).
`

// TestDegradedFallbackOnBudget is the acceptance scenario: a query whose
// counting run trips its strategy-specific budget under Auto must return
// correct answers via the fallback chain, with the attempt recorded and
// the shared fact budget honored across attempts.
func TestDegradedFallbackOnBudget(t *testing.T) {
	p := lincount.MustParseProgram(mutualProgram)
	db := lincount.NewDatabase(p)
	q := "?- p(a,Y)."

	chain, err := lincount.FallbackChain(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if chain[0] != lincount.CountingRuntime {
		t.Fatalf("fallback chain %v: expected the counting runtime first (the test premise)", chain)
	}

	want, err := lincount.Eval(p, db, q, lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}

	const sharedFacts = 10_000
	res, err := lincount.Eval(p, db, q, lincount.Auto,
		lincount.WithMaxCountingTuples(1), // strategy-specific: trips immediately
		lincount.WithMaxDerivedFacts(sharedFacts))
	if err != nil {
		t.Fatalf("Auto must degrade, not fail: %v", err)
	}
	if res.Resolved != lincount.CountingRuntime {
		t.Errorf("Resolved = %v, want counting-runtime", res.Resolved)
	}
	if res.Strategy == lincount.CountingRuntime {
		t.Errorf("Strategy = %v: the tripped strategy cannot be the one that answered", res.Strategy)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("no degradation attempts recorded")
	}
	first := res.Degraded[0]
	if first.Strategy != lincount.CountingRuntime {
		t.Errorf("Degraded[0].Strategy = %v, want counting-runtime", first.Strategy)
	}
	if !strings.Contains(first.Err, "limit") {
		t.Errorf("Degraded[0].Err = %q, want a resource-limit message", first.Err)
	}
	if join(res.Answers) != join(want.Answers) {
		t.Errorf("degraded answers %v, want %v", res.Answers, want.Answers)
	}
	// The shared budget holds across attempts: the successful fallback's
	// own consumption stayed within what the failed attempt left.
	if res.Stats.DerivedFacts >= sharedFacts {
		t.Errorf("fallback derived %d facts, exceeding the shared budget %d", res.Stats.DerivedFacts, sharedFacts)
	}
}

// TestDegradedSharedBudgetExhaustion: when the failed attempt consumed
// the whole shared budget there is nothing left for a fallback, and the
// evaluation reports the limit trip rather than silently retrying with
// a fresh allowance.
func TestDegradedSharedBudgetExhaustion(t *testing.T) {
	p := lincount.MustParseProgram(mutualProgram)
	db := lincount.NewDatabase(p)
	// No strategy-specific budget: the counting runtime consumes the
	// shared budget itself, so its trip leaves no headroom.
	_, err := lincount.Eval(p, db, "?- p(a,Y).", lincount.Auto,
		lincount.WithMaxDerivedFacts(1))
	if err == nil {
		t.Fatal("expected the shared budget to fail the evaluation")
	}
	if !errors.Is(err, lincount.ErrResourceLimit) {
		t.Fatalf("err = %v, want a resource-limit error", err)
	}
}

// TestDegradedFallbackOnInjectedFault: an injected fault in the counting
// runtime must degrade to a working strategy with correct answers.
func TestDegradedFallbackOnInjectedFault(t *testing.T) {
	p := lincount.MustParseProgram(mutualProgram)
	db := lincount.NewDatabase(p)
	q := "?- p(a,Y)."
	want, err := lincount.Eval(p, db, q, lincount.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lincount.Eval(p, db, q, lincount.Auto,
		lincount.WithFaultInjection(3, "counting.node=err@1"))
	if err != nil {
		t.Fatalf("Auto must degrade around the injected fault: %v", err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("no degradation attempts recorded")
	}
	if res.Degraded[0].Strategy != lincount.CountingRuntime {
		t.Errorf("Degraded[0].Strategy = %v, want counting-runtime", res.Degraded[0].Strategy)
	}
	if join(res.Answers) != join(want.Answers) {
		t.Errorf("answers %v, want %v", res.Answers, want.Answers)
	}
}

// TestDegradedExplicitStrategyFailsFast: only Auto degrades — an
// explicit strategy must report its own failure.
func TestDegradedExplicitStrategyFailsFast(t *testing.T) {
	p := lincount.MustParseProgram(mutualProgram)
	db := lincount.NewDatabase(p)
	_, err := lincount.Eval(p, db, "?- p(a,Y).", lincount.CountingRuntime,
		lincount.WithMaxCountingTuples(1))
	if err == nil {
		t.Fatal("explicit counting-runtime must fail on its budget, not degrade")
	}
	if !errors.Is(err, lincount.ErrResourceLimit) {
		t.Fatalf("err = %v, want a resource-limit error", err)
	}
}

// TestDegradedCancellationFailsFast: real cancellation is never
// retryable — retrying a canceled evaluation only wastes time.
func TestDegradedCancellationFailsFast(t *testing.T) {
	p := lincount.MustParseProgram(mutualProgram)
	db := lincount.NewDatabase(p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := lincount.EvalContext(ctx, p, db, "?- p(a,Y).", lincount.Auto)
	if err == nil {
		t.Fatalf("expected cancellation, got %d answers via %v", len(res.Answers), res.Strategy)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResolvedMetadata: Resolved is populated on clean runs too.
func TestResolvedMetadata(t *testing.T) {
	p := lincount.MustParseProgram(`
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
par(a,b). par(b,c).
?- anc(a, Y).
`)
	db := lincount.NewDatabase(p)
	res, err := lincount.Eval(p, db, "?- anc(a, Y).", lincount.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved != res.Strategy {
		t.Errorf("clean run: Resolved %v != Strategy %v", res.Resolved, res.Strategy)
	}
	if len(res.Degraded) != 0 {
		t.Errorf("clean run recorded attempts: %v", res.Degraded)
	}
	res, err = lincount.Eval(p, db, "?- anc(a, Y).", lincount.QSQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved != lincount.QSQ {
		t.Errorf("explicit run: Resolved = %v, want qsq", res.Resolved)
	}
}

func join(rows [][]string) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = strings.Join(r, ",")
	}
	return strings.Join(parts, "|")
}

// TestChaosServerMVCC is the server-side chaos scenario: a live query
// server under concurrent readers and writers while seeded faults hit
// the write path (server.write, server.publish) and delays perturb the
// read path. Three invariants:
//
//  1. Snapshot isolation — every write request carries exactly K facts,
//     so any reader count not a multiple of K is a torn batch.
//  2. Classified failure — a request either succeeds or fails with a
//     typed, explainable error; never a panic, never a garbage answer.
//  3. Convergence — the final snapshot equals a fresh database with
//     exactly the acknowledged writes replayed (differential oracle).
func TestChaosServerMVCC(t *testing.T) {
	const (
		K          = 4
		numWriters = 3
		numWrites  = 20
		numReaders = 3
	)
	schedules := []struct {
		name  string
		seed  int64
		spec  string // write-path schedule, armed on the server injector
		evals string // read-path schedule, applied to every evaluation
	}{
		{"write-err", 11, "server.write=err~0.15", ""},
		{"publish-err", 12, "server.publish=err~0.10", ""},
		{"write-latency", 13, "server.write=delay~0.5:200us,server.publish=delay~0.3:100us", ""},
		{"mixed-storm", 14, "server.write=err~0.08,server.publish=err~0.05", "engine.iter=delay~0.2:100us,counting.step=delay~0.1:50us"},
	}
	// Goroutine hygiene: everything the schedules spawn — writers,
	// readers, the servers' own workers — must be gone once the group
	// finishes. The group wrapper forces every parallel subtest to
	// complete before the leak check below runs.
	goroutinesBefore := runtime.NumGoroutine()
	t.Run("schedules", func(t *testing.T) {
		for _, sched := range schedules {
			sched := sched
			t.Run(sched.name, func(t *testing.T) {
				t.Parallel()
				p := lincount.MustParseProgram("p(X,Y) :- f(X,Y).")
				inj, err := faultinject.ParseSpec(sched.seed, sched.spec)
				if err != nil {
					t.Fatal(err)
				}
				cfg := server.Config{
					Program:      p,
					DB:           lincount.NewDatabase(p),
					Inject:       inj,
					WriteRetries: 2,
					RetryBackoff: 100 * time.Microsecond,
				}
				if sched.evals != "" {
					cfg.EvalOptions = []lincount.Option{
						lincount.WithFaultInjection(sched.seed, sched.evals),
					}
				}
				s, err := server.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()

				var mu sync.Mutex
				var applied []struct {
					assert, retract string
				}

				var writers sync.WaitGroup
				for w := 0; w < numWriters; w++ {
					writers.Add(1)
					go func(w int) {
						defer writers.Done()
						lastOK := -1 // index of this writer's last acknowledged assert
						for j := 0; j < numWrites; j++ {
							req := server.WriteRequest{}
							factsOf := func(j int) string {
								var sb strings.Builder
								for k := 0; k < K; k++ {
									fmt.Fprintf(&sb, "f(w%d_%d,k%d). ", w, j, k)
								}
								return sb.String()
							}
							// Every third op retracts the writer's previous
							// acknowledged group — still exactly K facts, so
							// the multiple-of-K invariant holds throughout.
							if j%3 == 2 && lastOK >= 0 {
								req.Retract = factsOf(lastOK)
								lastOK = -1
							} else {
								req.Assert = factsOf(j)
							}
							res, err := s.Write(ctx, req)
							if err != nil {
								if !errors.Is(err, faultinject.ErrInjected) {
									t.Errorf("writer %d: unclassified error: %v", w, err)
								}
								continue
							}
							if res.Epoch == 0 {
								t.Errorf("writer %d: acknowledged write at epoch 0", w)
							}
							if req.Assert != "" {
								lastOK = j
							}
							mu.Lock()
							applied = append(applied, struct{ assert, retract string }{req.Assert, req.Retract})
							mu.Unlock()
							// Maintenance differential oracle: after every
							// acknowledged write batch, the incrementally
							// maintained materialisation must equal a
							// from-scratch re-evaluation of its snapshot.
							if snap := s.Snapshot(); snap.Mat != nil {
								if err := snap.Mat.Verify(ctx); err != nil {
									t.Errorf("writer %d: maintenance diverged at epoch %d: %v", w, snap.Epoch, err)
									return
								}
							}
						}
					}(w)
				}

				stop := make(chan struct{})
				var readers sync.WaitGroup
				for r := 0; r < numReaders; r++ {
					readers.Add(1)
					go func() {
						defer readers.Done()
						var lastEpoch uint64
						for {
							select {
							case <-stop:
								return
							default:
							}
							// Live introspection under load: the registry must
							// expose only well-formed entries — our one query
							// text, nonzero ids, never more slots than there
							// are readers to fill them.
							for _, q := range s.ActiveQueries() {
								if q.ID == 0 {
									t.Error("registry entry with zero id")
									return
								}
								if q.Query != "?- p(X,Y)." {
									t.Errorf("registry leaked a foreign query: %q", q.Query)
									return
								}
							}
							if n := len(s.ActiveQueries()); n > numReaders {
								t.Errorf("registry holds %d entries with only %d readers", n, numReaders)
								return
							}
							res, err := s.Query(ctx, server.QueryRequest{Query: "?- p(X,Y)."})
							if err != nil {
								// Read-path faults must surface classified.
								if !errors.Is(err, faultinject.ErrInjected) &&
									!errors.Is(err, lincount.ErrResourceLimit) &&
									!errors.Is(err, context.Canceled) {
									t.Errorf("reader: unclassified error: %v", err)
									return
								}
								continue
							}
							if len(res.Answers)%K != 0 {
								t.Errorf("torn batch: %d facts at epoch %d (not a multiple of %d)",
									len(res.Answers), res.Epoch, K)
								return
							}
							if res.Epoch < lastEpoch {
								t.Errorf("epoch regressed: %d after %d", res.Epoch, lastEpoch)
								return
							}
							lastEpoch = res.Epoch
						}
					}()
				}

				writers.Wait()
				close(stop)
				readers.Wait()

				// Differential oracle on the final state: replay exactly the
				// acknowledged operations, in acknowledgment order, on a
				// fresh database. Writers use disjoint fact namespaces and
				// each writer's ops are sequential, so replay order across
				// writers commutes.
				oracleDB := lincount.NewDatabase(p)
				for _, op := range applied {
					if op.assert != "" {
						if err := oracleDB.LoadFacts(op.assert); err != nil {
							t.Fatal(err)
						}
					}
					if op.retract != "" {
						if _, err := oracleDB.RetractFacts(op.retract); err != nil {
							t.Fatal(err)
						}
					}
				}
				want, err := lincount.Eval(p, oracleDB, "?- p(X,Y).", lincount.SemiNaive)
				if err != nil {
					t.Fatal(err)
				}
				got, err := lincount.Eval(p, s.Snapshot().DB, "?- p(X,Y).", lincount.SemiNaive)
				if err != nil {
					t.Fatal(err)
				}
				sortRows := func(rows [][]string) []string {
					out := make([]string, len(rows))
					for i, r := range rows {
						out[i] = strings.Join(r, ",")
					}
					sort.Strings(out)
					return out
				}
				g, o := sortRows(got.Answers), sortRows(want.Answers)
				if strings.Join(g, "|") != strings.Join(o, "|") {
					t.Fatalf("final state diverged from oracle:\nserver: %d answers\noracle: %d answers",
						len(g), len(o))
				}
				// The maintained materialisation must agree with the same
				// oracle: its answers are what auto reads were served from.
				if snap := s.Snapshot(); snap.Mat != nil {
					mrows, err := snap.Mat.Answers("?- p(X,Y).")
					if err != nil {
						t.Fatal(err)
					}
					if m := sortRows(mrows); strings.Join(m, "|") != strings.Join(o, "|") {
						t.Fatalf("materialisation diverged from oracle:\nmaterialized: %d answers\noracle: %d answers",
							len(m), len(o))
					}
					if err := snap.Mat.Verify(ctx); err != nil {
						t.Fatalf("final maintenance verify: %v", err)
					}
				} else {
					t.Error("server lost its materialisation during the chaos run")
				}

				if err := s.Drain(ctx); err != nil {
					t.Fatalf("Drain: %v", err)
				}
				// The registry drained with the requests: a leaked entry
				// here is a slot whose end() never ran.
				if qs := s.ActiveQueries(); len(qs) != 0 {
					t.Errorf("registry leaked %d entries after drain: %+v", len(qs), qs)
				}
			})
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live after the chaos schedules, started with %d",
				runtime.NumGoroutine(), goroutinesBefore)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCrashRecovery is the durability chaos scenario: a durable
// server under concurrent writers while seeded faults hit the WAL
// append/fsync and publish sites, then a simulated SIGKILL — the data
// directory is copied byte-for-byte while the server is still running —
// and a fresh server recovers from the copy. Because the copy is taken
// with no write in flight, the recovered state must equal the
// acknowledged operations exactly (the differential oracle), not merely
// contain them. Two damage variants run on further copies: garbage
// appended to the live segment (a torn tail, silently truncated) and a
// mid-file bit flip (hard WALCorruptError — recovery must refuse).
func TestChaosCrashRecovery(t *testing.T) {
	const (
		K          = 4
		numWriters = 3
		numWrites  = 12 // per writer per phase; a checkpoint separates the phases
	)
	schedules := []struct {
		name string
		seed int64
		spec string
	}{
		{"clean", 21, ""},
		{"append-err", 22, "wal.append=err~0.15"},
		{"fsync-err", 23, "wal.fsync=err~0.10"},
		{"durability-storm", 24, "server.publish=err~0.05,wal.append=err~0.08,wal.fsync=err~0.05"},
	}
	for _, sched := range schedules {
		sched := sched
		t.Run(sched.name, func(t *testing.T) {
			t.Parallel()
			p := lincount.MustParseProgram("p(X,Y) :- f(X,Y).")
			dataDir := filepath.Join(t.TempDir(), "data")
			cfg := server.Config{
				Program:           p,
				DB:                lincount.NewDatabase(p),
				DataDir:           dataDir,
				CheckpointBytes:   -1, // explicit checkpoints only: keeps the
				CheckpointRecords: -1, // damage variants' segment layout stable
				WriteRetries:      2,
				RetryBackoff:      100 * time.Microsecond,
			}
			if sched.spec != "" {
				inj, err := faultinject.ParseSpec(sched.seed, sched.spec)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Inject = inj
			}
			s, err := server.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			var mu sync.Mutex
			var applied []struct {
				assert, retract string
			}

			// phase runs every writer over [lo, hi): the same K-facts-per-op
			// shape as TestChaosServerMVCC, every third op retracting the
			// writer's previous acknowledged group. Only acknowledged ops
			// enter the oracle log.
			phase := func(lo, hi int) {
				var writers sync.WaitGroup
				for w := 0; w < numWriters; w++ {
					writers.Add(1)
					go func(w int) {
						defer writers.Done()
						lastOK := -1
						for j := lo; j < hi; j++ {
							req := server.WriteRequest{}
							factsOf := func(j int) string {
								var sb strings.Builder
								for k := 0; k < K; k++ {
									fmt.Fprintf(&sb, "f(w%d_%d,k%d). ", w, j, k)
								}
								return sb.String()
							}
							if j%3 == 2 && lastOK >= 0 {
								req.Retract = factsOf(lastOK)
								lastOK = -1
							} else {
								req.Assert = factsOf(j)
							}
							res, err := s.Write(ctx, req)
							if err != nil {
								if !errors.Is(err, faultinject.ErrInjected) {
									t.Errorf("writer %d: unclassified error: %v", w, err)
								}
								continue
							}
							if res.Epoch == 0 {
								t.Errorf("writer %d: acknowledged write at epoch 0", w)
							}
							if req.Assert != "" {
								lastOK = j
							}
							mu.Lock()
							applied = append(applied, struct{ assert, retract string }{req.Assert, req.Retract})
							mu.Unlock()
						}
					}(w)
				}
				writers.Wait()
			}

			phase(0, numWrites)
			// Checkpoint mid-stream: recovery below must stitch the snapshot
			// together with the post-checkpoint log records.
			if _, err := s.Checkpoint(ctx); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			phase(numWrites, 2*numWrites)

			finalEpoch := s.Snapshot().Epoch

			// The SIGKILL image: copy the directory while the server still
			// holds the log open. No write is in flight, so the image holds
			// exactly the acknowledged state.
			copyData := func() string {
				t.Helper()
				dst := filepath.Join(t.TempDir(), "data")
				if err := os.MkdirAll(dst, 0o755); err != nil {
					t.Fatal(err)
				}
				entries, err := os.ReadDir(dataDir)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if e.IsDir() {
						continue
					}
					data, err := os.ReadFile(filepath.Join(dataDir, e.Name()))
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				return dst
			}
			liveSegment := func(dir string) string {
				t.Helper()
				segs, err := wal.ListSegments(dir)
				if err != nil || len(segs) == 0 {
					t.Fatalf("no WAL segments in %s: %v", dir, err)
				}
				return filepath.Join(dir, segs[len(segs)-1].Name)
			}
			recoverFrom := func(dir string) (*server.Server, error) {
				return server.New(server.Config{
					Program:           p,
					DB:                lincount.NewDatabase(p),
					DataDir:           dir,
					CheckpointBytes:   -1,
					CheckpointRecords: -1,
				})
			}
			sortRows := func(rows [][]string) string {
				out := make([]string, len(rows))
				for i, r := range rows {
					out[i] = strings.Join(r, ",")
				}
				sort.Strings(out)
				return strings.Join(out, "|")
			}

			// The differential oracle: a fresh database with exactly the
			// acknowledged ops replayed.
			oracleDB := lincount.NewDatabase(p)
			mu.Lock()
			for _, op := range applied {
				if op.assert != "" {
					if err := oracleDB.LoadFacts(op.assert); err != nil {
						t.Fatal(err)
					}
				}
				if op.retract != "" {
					if _, err := oracleDB.RetractFacts(op.retract); err != nil {
						t.Fatal(err)
					}
				}
			}
			mu.Unlock()
			want, err := lincount.Eval(p, oracleDB, "?- p(X,Y).", lincount.SemiNaive)
			if err != nil {
				t.Fatal(err)
			}
			wantRows := sortRows(want.Answers)

			checkRecovered := func(t *testing.T, dir string) *server.Server {
				t.Helper()
				s2, err := recoverFrom(dir)
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				if got := s2.Snapshot().Epoch; got != finalEpoch {
					t.Errorf("recovered epoch %d, want %d", got, finalEpoch)
				}
				res, err := lincount.Eval(p, s2.Snapshot().DB, "?- p(X,Y).", lincount.SemiNaive)
				if err != nil {
					t.Fatalf("query after recovery: %v", err)
				}
				if len(res.Answers)%K != 0 {
					t.Errorf("torn batch after recovery: %d facts (not a multiple of %d)", len(res.Answers), K)
				}
				if got := sortRows(res.Answers); got != wantRows {
					t.Errorf("recovered state diverged from oracle:\nrecovered: %d answers\noracle:    %d answers",
						len(res.Answers), len(want.Answers))
				}
				return s2
			}

			// 1. Clean SIGKILL image: exact oracle equality.
			s2 := checkRecovered(t, copyData())
			if err := s2.Drain(ctx); err != nil {
				t.Fatalf("Drain recovered: %v", err)
			}

			// 2. Torn tail: garbage after the last complete record is an
			// interrupted append — truncated, everything acknowledged kept.
			tornDir := copyData()
			torn := []byte{0x20, 0, 0, 0, 0xde, 0xad, 0xbe} // partial frame: length 32, 3 payload bytes
			f, err := os.OpenFile(liveSegment(tornDir), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(torn); err != nil {
				t.Fatal(err)
			}
			f.Close()
			s3 := checkRecovered(t, tornDir)
			if got := s3.Recovery().TruncatedBytes; got != int64(len(torn)) {
				t.Errorf("TruncatedBytes = %d, want %d", got, len(torn))
			}
			if err := s3.Drain(ctx); err != nil {
				t.Fatalf("Drain torn-tail recovered: %v", err)
			}

			// 3. Mid-file bit flip: damage before the last record cannot be
			// a torn append — recovery must refuse with WALCorruptError
			// rather than serve a state missing acknowledged writes. Needs
			// at least two records in the segment so the flip is mid-file.
			corruptDir := copyData()
			seg := liveSegment(corruptDir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if records := countFrames(data); records >= 2 {
				data[len(wal.Magic)+8] ^= 0x01 // first payload byte of the first record
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}
				_, err := recoverFrom(corruptDir)
				var corrupt *wal.WALCorruptError
				if !errors.As(err, &corrupt) {
					t.Errorf("recovery over mid-file corruption: err = %v, want WALCorruptError", err)
				}
			}

			if err := s.Drain(ctx); err != nil {
				t.Fatalf("Drain: %v", err)
			}
		})
	}
}

// countFrames walks a segment's frame chain (4-byte little-endian
// length + 4-byte CRC + payload) and returns how many complete records
// it holds.
func countFrames(data []byte) int {
	off := len(wal.Magic)
	n := 0
	for off+8 <= len(data) {
		ln := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		if off+8+ln > len(data) {
			break
		}
		off += 8 + ln
		n++
	}
	return n
}
